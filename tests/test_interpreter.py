"""Tests for the behavioral statement interpreter."""


from repro.api import compile_design
from repro.sim.interpreter import execute_behavioral
from repro.sim.values import GoodValueStore, GoodView


def make(source, top):
    design = compile_design(source, top=top)
    store = GoodValueStore(design)
    return design, store, GoodView(store)


NB_SRC = """
module nb(input clk, input [7:0] a, input [7:0] b, input pick,
          output reg [7:0] x, output reg [7:0] y);
  always @(posedge clk) begin
    if (pick) begin
      x <= a;
      y <= b;
    end
    else x <= b;
  end
endmodule
"""


def test_nonblocking_updates_deferred():
    design, store, view = make(NB_SRC, "nb")
    store.set(design.signal("a"), 5)
    store.set(design.signal("b"), 9)
    store.set(design.signal("pick"), 1)
    result = execute_behavioral(design.behavioral_nodes[0], view)
    # nothing written directly
    assert store.get(design.signal("x")) == 0
    updates = result.combined_updates()
    assert {(u.signal.name, u.value) for u in updates} == {("x", 5), ("y", 9)}


def test_branch_selects_else_path():
    design, store, view = make(NB_SRC, "nb")
    store.set(design.signal("b"), 3)
    result = execute_behavioral(design.behavioral_nodes[0], view, want_trace=True)
    updates = result.combined_updates()
    assert [(u.signal.name, u.value) for u in updates] == [("x", 3)]


def test_trace_records_decisions():
    design, store, view = make(NB_SRC, "nb")
    store.set(design.signal("pick"), 1)
    result = execute_behavioral(design.behavioral_nodes[0], view, want_trace=True)
    assert list(result.trace.values()) == [0]
    store.set(design.signal("pick"), 0)
    result = execute_behavioral(design.behavioral_nodes[0], view, want_trace=True)
    assert list(result.trace.values()) == [1]


def test_trace_disabled_by_default():
    design, store, view = make(NB_SRC, "nb")
    result = execute_behavioral(design.behavioral_nodes[0], view)
    assert result.trace == {}


BLOCKING_SRC = """
module blk(input clk, input [7:0] a, output reg [7:0] y, output reg [7:0] z);
  reg [7:0] t;
  always @(*) begin
    t = a + 1;
    t = t * 2;
    y = t;
    z = t - a;
  end
endmodule
"""


def test_blocking_assignments_chain():
    design, store, view = make(BLOCKING_SRC, "blk")
    store.set(design.signal("a"), 3)
    result = execute_behavioral(design.behavioral_nodes[0], view)
    finals = {s.name: v for s, v in result.blocking_writes.values.items()}
    assert finals["t"] == 8
    assert finals["y"] == 8
    assert finals["z"] == 5
    # combined updates publish the blocking results
    published = {u.signal.name: u.value for u in result.combined_updates()}
    assert published["y"] == 8 and published["z"] == 5


CASE_SRC = """
module csel(input clk, input [1:0] sel, input [7:0] a, output reg [7:0] y);
  always @(posedge clk) begin
    case (sel)
      2'd0: y <= a;
      2'd1: y <= a + 1;
      default: y <= 8'hFF;
    endcase
  end
endmodule
"""


def test_case_arm_selection_and_default():
    design, store, view = make(CASE_SRC, "csel")
    a, sel = design.signal("a"), design.signal("sel")
    store.set(a, 10)
    node = design.behavioral_nodes[0]
    for sel_value, expected, arm in [(0, 10, 0), (1, 11, 1), (3, 0xFF, 2)]:
        store.set(sel, sel_value)
        result = execute_behavioral(node, view, want_trace=True)
        assert result.updates[0].value == expected
        assert list(result.trace.values()) == [arm]


PARTIAL_SRC = """
module part(input clk, input [7:0] a, input [2:0] idx,
            output reg [7:0] y);
  always @(posedge clk) begin
    y[3:0] <= a[7:4];
    y[idx] <= 1;
  end
endmodule
"""


def test_partial_and_dynamic_bit_updates():
    design, store, view = make(PARTIAL_SRC, "part")
    store.set(design.signal("a"), 0xA0)
    store.set(design.signal("idx"), 6)
    store.set(design.signal("y"), 0x00)
    result = execute_behavioral(design.behavioral_nodes[0], view)
    slice_update, bit_update = result.updates
    assert slice_update.msb == 3 and slice_update.lsb == 0 and slice_update.value == 0xA
    assert bit_update.msb == 6 and bit_update.lsb == 6 and bit_update.value == 1
    # applying on top of the old value preserves untouched bits
    assert slice_update.apply_to(0xF0) == 0xFA


MEM_SRC = """
module memw(input clk, input we, input [1:0] addr, input [7:0] d,
            output reg [7:0] q);
  reg [7:0] store [0:3];
  always @(posedge clk) begin
    if (we) store[addr] <= d;
    q <= store[addr];
  end
endmodule
"""


def test_memory_word_update_and_read():
    design, store, view = make(MEM_SRC, "memw")
    store.set(design.signal("we"), 1)
    store.set(design.signal("addr"), 2)
    store.set(design.signal("d"), 0x42)
    store.set_word(design.signal("store"), 2, 0x99)
    result = execute_behavioral(design.behavioral_nodes[0], view)
    word_update = result.updates[0]
    assert word_update.word_index == 2 and word_update.value == 0x42
    # the read of store[addr] sees the pre-update (non-blocking) value
    assert result.updates[1].value == 0x99


def test_rhs_truncated_to_lvalue_width():
    source = """
    module trunc(input clk, input [7:0] a, output reg [3:0] y);
      always @(posedge clk) y <= a + 8'hFF;
    endmodule
    """
    design, store, view = make(source, "trunc")
    store.set(design.signal("a"), 0x12)
    result = execute_behavioral(design.behavioral_nodes[0], view)
    assert result.updates[0].value == (0x12 + 0xFF) & 0xF
