"""Tests for explicit and implicit (Algorithm 1) redundancy detection.

The implicit-redundancy tests reproduce the paper's motivating scenarios of
Fig. 3 / Fig. 5: faults whose divergent inputs do not change the execution
path nor the data the path depends on must be classified redundant; faults
that flip a branch decision or touch a path dependency must not.
"""

import pytest

from repro.api import compile_design
from repro.core.explicit import divergent_read_signals, is_explicitly_redundant
from repro.core.redundancy import ImplicitRedundancyChecker
from repro.sim.interpreter import execute_behavioral
from repro.sim.values import ConcurrentValueStore, FaultView, GoodView

# The behavioral code of Fig. 5(a) in the paper.
FIG5_SRC = """
module fig5(
  input clk,
  input [7:0] s,
  input [7:0] c,
  input [7:0] g,
  input [7:0] k,
  input [7:0] b,
  output reg [7:0] r,
  output reg [7:0] a
);
  always @(posedge clk) begin
    if (s == 0) begin
      r <= c + g;
      a <= k;
    end
    else if (s == 1)
      r <= 0;
    else begin
      a <= 0;
      if (b == 0)
        r <= r + 1;
      else
        r <= a * r;
    end
  end
endmodule
"""


@pytest.fixture
def fig5():
    design = compile_design(FIG5_SRC, top="fig5")
    node = design.behavioral_nodes[0]
    store = ConcurrentValueStore(design)
    checker = ImplicitRedundancyChecker(design)
    return design, node, store, checker


def set_good(design, store, **values):
    for name, value in values.items():
        store.set(design.signal(name), value)


def good_trace(node, store):
    return execute_behavioral(node, GoodView(store), want_trace=True).trace


def check(checker, node, store, fault_id):
    return checker.is_redundant(
        node, store, fault_id, good_trace(node, store), FaultView(store, fault_id)
    )


# ------------------------------------------------------------------ explicit
def test_explicit_redundant_when_no_divergence(fig5):
    design, node, store, _ = fig5
    assert is_explicitly_redundant(store, node, fault_id=0)


def test_explicit_not_redundant_with_divergent_read(fig5):
    design, node, store, _ = fig5
    store.set_fault_value(design.signal("s"), 0, 3)
    assert not is_explicitly_redundant(store, node, 0)
    assert divergent_read_signals(store, node, 0) == [design.signal("s")]


def test_explicit_ignores_unrelated_signals(fig5):
    design, node, store, _ = fig5
    store.set_fault_value(design.signal("clk"), 0, 1)  # clock is not a data read
    assert is_explicitly_redundant(store, node, 0)


# ------------------------------------------------------------------ implicit
def test_fig3b_implicit_redundancy_detected(fig5):
    """Fault changes b, c, k while the good path takes the s==1 branch."""
    design, node, store, checker = fig5
    set_good(design, store, s=1, c=2, g=0, k=0, b=0, r=1, a=2)
    store.set_fault_value(design.signal("b"), 7, 1)   # decision value changes...
    store.set_fault_value(design.signal("c"), 7, 9)   # ...but not on the taken path
    store.set_fault_value(design.signal("k"), 7, 5)
    assert check(checker, node, store, 7)


def test_fig3c_dependency_divergence_not_redundant(fig5):
    """Same path, but the fault touches r which the taken path depends on."""
    design, node, store, checker = fig5
    set_good(design, store, s=2, b=0, r=1, a=2)
    store.set_fault_value(design.signal("r"), 3, 9)
    assert not check(checker, node, store, 3)


def test_path_decision_divergence_not_redundant(fig5):
    """A fault that flips the s==0 decision takes another path entirely."""
    design, node, store, checker = fig5
    set_good(design, store, s=0, c=1, g=1, k=1)
    store.set_fault_value(design.signal("s"), 5, 2)
    assert not check(checker, node, store, 5)


def test_same_decision_outcome_despite_value_change(fig5):
    """Fig. 5(d): Evaluate(1) == Evaluate(5) for the b == 0 test."""
    design, node, store, checker = fig5
    set_good(design, store, s=2, b=1, r=1, a=2)
    store.set_fault_value(design.signal("b"), 9, 5)  # both nonzero: same arm
    assert check(checker, node, store, 9)


def test_dependency_on_taken_branch_detected(fig5):
    design, node, store, checker = fig5
    set_good(design, store, s=0, c=2, g=3, k=4)
    store.set_fault_value(design.signal("k"), 2, 7)  # k is read on the s==0 path
    assert not check(checker, node, store, 2)


def test_divergence_on_other_branch_is_redundant(fig5):
    design, node, store, checker = fig5
    set_good(design, store, s=0, c=2, g=3, k=4, r=1, a=1)
    # r and a are only read on the s>1 path, b only decides there
    store.set_fault_value(design.signal("b"), 4, 1)
    assert check(checker, node, store, 4)


def test_checker_caches_vdgs(fig5):
    design, node, store, checker = fig5
    assert checker.vdg_for(node) is checker.vdg_for(node)
    checker.prebuild()
    assert len(checker._vdgs) == len(design.behavioral_nodes)


def test_checker_statistics(fig5):
    design, node, store, checker = fig5
    set_good(design, store, s=1)
    store.set_fault_value(design.signal("c"), 1, 9)
    assert check(checker, node, store, 1)
    store.set_fault_value(design.signal("s"), 2, 3)
    assert not check(checker, node, store, 2)
    assert checker.checks == 2
    assert checker.hits == 1
    assert checker.hit_rate == pytest.approx(50.0)


# -------------------------------------------------- blocking-local handling
LOCAL_SRC = """
module localdep(
  input clk,
  input [7:0] a,
  input [7:0] b,
  input [7:0] c,
  output reg [7:0] y
);
  reg [7:0] t;
  always @(posedge clk) begin
    t = a;
    if (t != 0) y <= b;
    else y <= c;
  end
endmodule
"""


def test_local_dependent_condition_is_conservative():
    """A condition on a blocking-assigned local must not be mis-classified.

    The fault diverges on ``a``; the pre-execution value of ``t`` is identical
    for good and fault, but the true execution reads ``a`` through ``t``.  The
    checker must report non-redundant (soundness over precision).
    """
    design = compile_design(LOCAL_SRC, top="localdep")
    node = design.behavioral_nodes[0]
    store = ConcurrentValueStore(design)
    checker = ImplicitRedundancyChecker(design)
    store.set(design.signal("a"), 1)
    store.set(design.signal("b"), 3)
    store.set(design.signal("c"), 4)
    store.set_fault_value(design.signal("a"), 0, 0)  # flips the t != 0 branch
    trace = good_trace(node, store)
    assert not checker.is_redundant(node, store, 0, trace, FaultView(store, 0))


def test_local_dependent_redundant_when_support_clean():
    design = compile_design(LOCAL_SRC, top="localdep")
    node = design.behavioral_nodes[0]
    store = ConcurrentValueStore(design)
    checker = ImplicitRedundancyChecker(design)
    store.set(design.signal("a"), 1)
    # fault diverges only on c, which the taken (t != 0) path never reads
    store.set_fault_value(design.signal("c"), 1, 9)
    trace = good_trace(node, store)
    assert checker.is_redundant(node, store, 1, trace, FaultView(store, 1))
