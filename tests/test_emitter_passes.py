"""Pass-level tests for the unified emitter core (``repro.sim.emitter``).

The three codegen targets (serial / packed / vector) share one emitter walk
parameterized by :class:`~repro.sim.emitter.EmitterPasses`.  This module pins
the pass machinery itself:

* every pass is individually disableable and its footprint in the generated
  source appears/disappears with the toggle,
* the pass order is stable (it is part of the cache-key contract),
* golden snapshots of the generated source for one tiny design per target,
  keyed by the emitter format version — a version bump re-seeds them,
* every pass configuration owns a distinct cache suffix, and the corrupt/
  stale-entry self-healing of the cache holds for pass variants too.
"""

import os

import pytest

from fixture_designs import COUNTER_SRC  # noqa: F401  (via conftest fixtures)
from repro.api import simulate_good
from repro.errors import SimulationError
from repro.sim import codegen as codegen_mod
from repro.sim.codegen import (
    CODEGEN_VERSION,
    PACKED_VERSION,
    VECTOR_VERSION,
    CodegenEngine,
    PackedLayout,
    design_fingerprint,
    generate_packed_source,
    generate_source,
    generate_vector_source,
    packed_stride,
)
from repro.sim.emitter import (
    DEFAULT_PASSES,
    PASS_ORDER,
    EmitterPasses,
    coerce_passes,
)
from repro.sim.vector import np as _vector_np


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Keep every test away from the developer's real ~/.cache/repro-codegen."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


def _packed_layout(design):
    return PackedLayout(4, packed_stride(design))


# ------------------------------------------------------------- pass plumbing
def test_pass_order_is_stable():
    """PASS_ORDER is a published contract (cache suffixes depend on it)."""
    assert PASS_ORDER == (
        "lane_layout",
        "event_scheduler",
        "comb_once",
        "predication",
        "const_pool",
    )


def test_default_passes_everything_on():
    assert DEFAULT_PASSES == EmitterPasses()
    assert DEFAULT_PASSES.event_scheduler
    assert DEFAULT_PASSES.comb_once
    assert DEFAULT_PASSES.const_pool
    # the default config keeps the historical (suffix-free) cache keys
    assert DEFAULT_PASSES.suffix() == ""


def test_with_toggle_flips_exactly_one_pass():
    toggled = DEFAULT_PASSES.with_toggle(comb_once=False)
    assert toggled == EmitterPasses(comb_once=False)
    assert toggled.event_scheduler and toggled.const_pool
    assert DEFAULT_PASSES.comb_once  # frozen: the original is untouched


def test_coerce_passes():
    assert coerce_passes(None) is DEFAULT_PASSES
    config = EmitterPasses(event_scheduler=False)
    assert coerce_passes(config) is config
    with pytest.raises(SimulationError, match="EmitterPasses"):
        coerce_passes("event_scheduler=off")


def test_suffixes_unique_across_all_configurations():
    """Each of the 8 toggle combinations owns a distinct cache suffix."""
    configs = EmitterPasses.all_configurations()
    assert len(configs) == 8
    assert configs[0] == DEFAULT_PASSES  # default first, by contract
    suffixes = [config.suffix() for config in configs]
    assert len(set(suffixes)) == len(suffixes)
    # non-default suffixes spell out every toggle (stable key shape)
    assert EmitterPasses(event_scheduler=False).suffix() == "es0co1cp1"
    assert EmitterPasses(False, False, False).suffix() == "es0co0cp0"


# --------------------------------------------------- per-pass source footprint
def test_event_scheduler_toggle_footprint(counter_design):
    scheduled = generate_source(counter_design)
    flat = generate_source(counter_design, EmitterPasses(event_scheduler=False))
    assert "_ls = LS[" in scheduled  # last-scheduled guard reads
    assert "_ls = LS[" not in flat
    assert "VER[" in scheduled


def test_comb_once_toggle_footprint(counter_design):
    with_once = generate_source(counter_design)
    without = generate_source(counter_design, EmitterPasses(comb_once=False))
    assert "def comb_once(" in with_once
    assert "def comb_once(" not in without


def test_comb_once_requires_acyclic_pure_rtl(mux_design):
    """A design with comb behavioral blocks never gets the single-pass settle."""
    assert "def comb_once(" not in generate_source(mux_design)


def test_const_pool_toggle_footprint(counter_design):
    layout = _packed_layout(counter_design)
    pooled = generate_packed_source(counter_design, layout)
    inline = generate_packed_source(
        counter_design, layout, EmitterPasses(const_pool=False)
    )
    assert "_K0 = _repl(" in pooled  # hoisted replicated-constant pool
    assert "_K0" not in inline
    assert "_repl(15)" in inline  # the same constant, re-replicated inline


def test_generation_is_deterministic_per_config(counter_design):
    layout = _packed_layout(counter_design)
    for passes in EmitterPasses.all_configurations():
        assert generate_source(counter_design, passes) == generate_source(
            counter_design, passes
        )
        assert generate_packed_source(
            counter_design, layout, passes
        ) == generate_packed_source(counter_design, layout, passes)
        assert generate_vector_source(counter_design, passes) == generate_vector_source(
            counter_design, passes
        )


# ----------------------------------------------------------- golden snapshots
_GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "emitter")


def _check_golden(filename, source):
    """Compare against the stored snapshot; seed it if the version is new.

    Snapshots are keyed by the emitter format version, so bumping
    ``CODEGEN_VERSION`` / ``PACKED_VERSION`` / ``VECTOR_VERSION`` re-seeds
    them on the next run instead of failing against stale output (delete the
    old version's file in the same commit).
    """
    path = os.path.join(_GOLDEN_DIR, filename)
    if not os.path.exists(path):
        os.makedirs(_GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        pytest.skip(f"seeded new golden snapshot {filename}")
    with open(path, encoding="utf-8") as handle:
        golden = handle.read()
    assert source == golden, (
        f"generated source drifted from {filename} without a version bump"
    )


def test_golden_serial_source(counter_design):
    _check_golden(
        f"counter-serial-v{CODEGEN_VERSION}.py", generate_source(counter_design)
    )


def test_golden_packed_source(counter_design):
    _check_golden(
        f"counter-packed-v{PACKED_VERSION}.py",
        generate_packed_source(counter_design, _packed_layout(counter_design)),
    )


def test_golden_vector_source(counter_design):
    _check_golden(
        f"counter-vector-v{VECTOR_VERSION}.py", generate_vector_source(counter_design)
    )


# -------------------------------------------------------------- cache hygiene
def test_pass_configs_get_distinct_cache_entries(tmp_path, counter_design):
    CodegenEngine(counter_design)
    CodegenEngine(counter_design, passes=EmitterPasses(event_scheduler=False))
    cache = tmp_path / "codegen-cache"
    fingerprint = design_fingerprint(counter_design)
    names = sorted(path.name for path in cache.glob("*.py"))
    assert names == [f"{fingerprint}-es0co1cp1.py", f"{fingerprint}.py"]


def test_corrupt_pass_variant_cache_entry_regenerates(
    tmp_path, counter_design, counter_stimulus
):
    """The self-healing cache contract holds for pass-variant entries too."""
    passes = EmitterPasses(comb_once=False)
    good = CodegenEngine(counter_design, passes=passes)
    path = (
        tmp_path
        / "codegen-cache"
        / f"{design_fingerprint(counter_design)}-{passes.suffix()}.py"
    )
    assert path.exists()
    path.write_text("def comb_pass(:  # truncated mid-write\n")
    recovered = CodegenEngine(counter_design, passes=passes)
    assert not recovered.cache_hit
    assert recovered.run(counter_stimulus) == good.run(counter_stimulus)


def test_stale_pass_variant_sidecar_recompiles(
    tmp_path, counter_design, counter_stimulus
):
    """A corrupt bytecode sidecar under a pass-variant key heals itself."""
    passes = EmitterPasses(event_scheduler=False)
    good = CodegenEngine(counter_design, passes=passes)
    sidecar = next((tmp_path / "codegen-cache").glob(f"*-{passes.suffix()}.*.bc"))
    sidecar.write_bytes(b"\x00garbage")
    codegen_mod._CODE_MEMO.clear()
    recovered = CodegenEngine(counter_design, passes=passes)
    assert recovered.cache_hit  # the source cache entry is still fine
    assert recovered.run(counter_stimulus) == good.run(counter_stimulus)


# ------------------------------------------------------------- config parity
def test_all_configurations_trace_parity(counter_design, counter_stimulus):
    """Every toggle combination produces the event-driven reference trace."""
    reference = simulate_good(counter_design, counter_stimulus, engine="event")
    for passes in EmitterPasses.all_configurations():
        engine = CodegenEngine(counter_design, use_cache=False, passes=passes)
        assert engine.run(counter_stimulus) == reference, passes.describe()


@pytest.mark.skipif(_vector_np is None, reason="NumPy not installed")
def test_vector_configurations_load(counter_design):
    """Every pass config produces a loadable vector kernel module."""
    from repro.sim.vector import VectorCodegenEngine

    for passes in EmitterPasses.all_configurations():
        VectorCodegenEngine(counter_design, use_cache=False, passes=passes)
