"""Tests for the value stores, fault views and stimulus abstraction."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StimulusError
from repro.ir.design import Design
from repro.ir.signal import Signal, SignalKind
from repro.sim.stimulus import RandomStimulus, VectorStimulus, truncated
from repro.sim.values import ConcurrentValueStore, FaultView, GoodValueStore, GoodView, OverlayView


def small_design():
    design = Design("d")
    design.add_signal(Signal("a", 8, SignalKind.INPUT))
    design.add_signal(Signal("b", 4, SignalKind.WIRE))
    design.add_signal(Signal("o", 8, SignalKind.OUTPUT))
    design.add_signal(Signal("m", 8, SignalKind.REG, depth=4))
    return design.finalize()


def test_good_store_defaults_to_zero():
    store = GoodValueStore(small_design())
    assert all(v == 0 for v in store.values.values())
    assert store.get_word(store.design.signal("m"), 3) == 0


def test_good_store_masks_on_write():
    design = small_design()
    store = GoodValueStore(design)
    store.set(design.signal("b"), 0xFF)
    assert store.get(design.signal("b")) == 0xF


def test_out_of_range_memory_access():
    design = small_design()
    store = GoodValueStore(design)
    store.set_word(design.signal("m"), 99, 5)   # silently dropped
    assert store.get_word(design.signal("m"), 99) == 0


def test_snapshot_outputs_order():
    design = small_design()
    store = GoodValueStore(design)
    store.set(design.signal("o"), 7)
    assert store.snapshot_outputs() == (7,)


def test_overlay_view_shadows_base():
    design = small_design()
    store = GoodValueStore(design)
    store.set(design.signal("a"), 10)
    overlay = OverlayView(GoodView(store))
    assert overlay.get(design.signal("a")) == 10
    overlay.set(design.signal("a"), 3)
    assert overlay.get(design.signal("a")) == 3
    assert store.get(design.signal("a")) == 10


def test_concurrent_store_divergences():
    design = small_design()
    store = ConcurrentValueStore(design)
    a = design.signal("a")
    store.set(a, 5)
    store.set_fault_value(a, 1, 9)
    assert store.diverges(a, 1)
    assert not store.diverges(a, 2)
    assert store.fault_value(a, 1) == 9
    assert store.fault_value(a, 2) == 5
    # converging back to the good value removes the divergence
    store.set_fault_value(a, 1, 5)
    assert not store.diverges(a, 1)


def test_concurrent_store_memory_divergences():
    design = small_design()
    store = ConcurrentValueStore(design)
    m = design.signal("m")
    store.set_word(m, 1, 0x11)
    store.set_fault_word(m, 1, 7, 0x22)
    assert store.diverges(m, 7)
    assert store.fault_word(m, 1, 7) == 0x22
    assert store.fault_word(m, 0, 7) == 0
    store.set_fault_word(m, 1, 7, 0x11)
    assert not store.diverges(m, 7)


def test_drop_fault_clears_all_divergences():
    design = small_design()
    store = ConcurrentValueStore(design)
    store.set_fault_value(design.signal("a"), 3, 1)
    store.set_fault_word(design.signal("m"), 0, 3, 5)
    store.drop_fault(3)
    assert not store.diverges(design.signal("a"), 3)
    assert not store.diverges(design.signal("m"), 3)


def test_fault_view_overlays_good_values():
    design = small_design()
    store = ConcurrentValueStore(design)
    a, b = design.signal("a"), design.signal("b")
    store.set(a, 4)
    store.set(b, 2)
    store.set_fault_value(a, 5, 12)
    view = FaultView(store, 5)
    assert view.get(a) == 12
    assert view.get(b) == 2


def test_fault_output_snapshot():
    design = small_design()
    store = ConcurrentValueStore(design)
    o = design.signal("o")
    store.set(o, 1)
    store.set_fault_value(o, 9, 3)
    assert store.fault_output_snapshot(9) == (3,)
    assert store.fault_output_snapshot(8) == (1,)


# ------------------------------------------------------------------ stimulus
def test_vector_stimulus_basics():
    stim = VectorStimulus([{"a": 1}, {"a": 2}], clock="clk")
    assert stim.num_cycles() == 2
    assert len(stim) == 2
    assert stim.vector(1) == {"a": 2}


def test_random_stimulus_deterministic():
    spec = {"x": 8, "y": 4}
    one = RandomStimulus(spec, cycles=20, seed=5)
    two = RandomStimulus(spec, cycles=20, seed=5)
    other = RandomStimulus(spec, cycles=20, seed=6)
    assert [one.vector(i) for i in range(20)] == [two.vector(i) for i in range(20)]
    assert [one.vector(i) for i in range(20)] != [other.vector(i) for i in range(20)]


def test_random_stimulus_fixed_and_per_cycle():
    stim = RandomStimulus(
        {"x": 4}, cycles=5, fixed={"en": 1},
        per_cycle=lambda c, v: dict(v, rst=1 if c == 0 else 0), seed=1,
    )
    assert stim.vector(0)["rst"] == 1
    assert stim.vector(3)["rst"] == 0
    assert all(stim.vector(i)["en"] == 1 for i in range(5))


def test_random_stimulus_respects_widths():
    stim = RandomStimulus({"x": 4}, cycles=50, seed=2)
    assert all(0 <= stim.vector(i)["x"] < 16 for i in range(50))


def test_stimulus_validation(counter_design):
    good = VectorStimulus([{"en": 1, "rst": 0, "load": 0, "din": 0}], clock="clk")
    good.validate(counter_design)
    bad_clock = VectorStimulus([{"en": 1}], clock="nope")
    with pytest.raises(StimulusError):
        bad_clock.validate(counter_design)
    bad_input = VectorStimulus([{"ghost": 1}], clock="clk")
    with pytest.raises(StimulusError):
        bad_input.validate(counter_design)
    empty = VectorStimulus([], clock="clk")
    with pytest.raises(StimulusError):
        empty.validate(counter_design)


def test_truncated_stimulus():
    stim = RandomStimulus({"x": 8}, cycles=30, clock="clk", seed=0)
    short = truncated(stim, 10)
    assert short.num_cycles() == 10
    assert short.clock == "clk"
    assert short.vector(3) == stim.vector(3)


@given(st.integers(0, 2**32 - 1))
def test_fault_value_roundtrip(seed):
    design = small_design()
    store = ConcurrentValueStore(design)
    a = design.signal("a")
    value = seed & 0xFF
    store.set_fault_value(a, 1, value)
    assert store.fault_value(a, 1) == value
    assert store.diverges(a, 1) == (value != store.get(a))
