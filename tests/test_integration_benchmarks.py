"""Integration tests: simulator agreement on the real benchmark designs.

These are the strongest correctness checks in the suite: for a selection of
benchmarks, the concurrent Eraser framework (with full redundancy elimination)
must reach exactly the same per-fault verdicts as an independent serial
re-simulation of every fault (IFsim) on the identical workload — the
reproduction of the paper's Table II parity claim at fault granularity.
"""

import pytest

from repro.baselines.ifsim import IFsimSimulator
from repro.baselines.vfsim import VFsimSimulator
from repro.core.framework import EraserMode, EraserSimulator
from repro.designs.registry import load_benchmark
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults

#: (benchmark, cycles, fault sample size) — kept small so the serial reference
#: stays fast; the seeds make the sample deterministic.
PARITY_CASES = [
    ("alu", 40, 25),
    ("apb", 40, 25),
    ("sha256_hv", 110, 20),
    ("sodor", 60, 20),
    ("conv_acc", 50, 20),
    ("mips", 60, 20),
]


@pytest.mark.parametrize("name,cycles,nfaults", PARITY_CASES)
def test_eraser_matches_serial_reference(name, cycles, nfaults):
    design, stim = load_benchmark(name, cycles=cycles)
    faults = sample_faults(generate_stuck_at_faults(design), nfaults, seed=11)
    eraser = EraserSimulator(design).run(stim, faults)
    ifsim = IFsimSimulator(design).run(stim, faults)
    assert eraser.coverage.same_verdicts(ifsim.coverage), eraser.coverage.disagreements(
        ifsim.coverage
    )


@pytest.mark.parametrize("name,cycles,nfaults", [("fpu", 40, 20), ("riscv_mini", 70, 20)])
def test_all_three_modes_match_vfsim(name, cycles, nfaults):
    design, stim = load_benchmark(name, cycles=cycles)
    faults = sample_faults(generate_stuck_at_faults(design), nfaults, seed=5)
    reference = VFsimSimulator(design).run(stim, faults)
    for mode in EraserMode:
        result = EraserSimulator(design, mode=mode).run(stim, faults)
        assert result.coverage.same_verdicts(reference.coverage), (name, mode)


def test_redundancy_profile_differs_between_sha_variants():
    """SHA256_HV is behavioral-dominated, SHA256_C2V is RTL-node dominated."""
    hv_design, hv_stim = load_benchmark("sha256_hv", cycles=110)
    c2v_design, c2v_stim = load_benchmark("sha256_c2v", cycles=110)
    faults_hv = sample_faults(generate_stuck_at_faults(hv_design), 25, seed=3)
    faults_c2v = sample_faults(generate_stuck_at_faults(c2v_design), 25, seed=3)
    hv = EraserSimulator(hv_design).run(hv_stim, faults_hv)
    c2v = EraserSimulator(c2v_design).run(c2v_stim, faults_c2v)
    assert hv.stats.behavioral_time_fraction > c2v.stats.behavioral_time_fraction


def test_eliminations_reduce_fault_executions_on_benchmark():
    design, stim = load_benchmark("apb", cycles=50)
    faults = sample_faults(generate_stuck_at_faults(design), 30, seed=9)
    full = EraserSimulator(design, mode=EraserMode.FULL).run(stim, faults)
    none = EraserSimulator(design, mode=EraserMode.NO_ELIMINATION).run(stim, faults)
    assert full.stats.bn_fault_executions < none.stats.bn_fault_executions
    assert full.coverage.same_verdicts(none.coverage)
