"""Tests for elaborated expression evaluation semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.ir.expr import Binary, Concat, Const, Index, Repl, SigRef, Slice, Ternary, Unary
from repro.ir.signal import Signal, SignalKind
from repro.utils.bitvec import to_signed


class DictView:
    """Minimal evaluation view backed by plain dictionaries."""

    def __init__(self, values=None, words=None):
        self.values = values or {}
        self.words = words or {}

    def get(self, signal):
        return self.values[signal]

    def get_word(self, signal, index):
        return self.words.get((signal, index), 0)


def sig(name="s", width=8, depth=None):
    return Signal(name, width, SignalKind.WIRE, depth=depth)


def test_const_truncates_to_width():
    assert Const(0x1FF, 8).eval(DictView()) == 0xFF


def test_sigref_reads_view():
    a = sig("a")
    assert SigRef(a).eval(DictView({a: 42})) == 42


def test_sigref_rejects_memory():
    with pytest.raises(SimulationError):
        SigRef(sig("m", 8, depth=4))


def test_slice_extracts_bits():
    a = sig("a", 16)
    view = DictView({a: 0xABCD})
    assert Slice(a, 15, 8).eval(view) == 0xAB
    assert Slice(a, 3, 0).eval(view) == 0xD
    assert Slice(a, 7, 7).eval(view) == 1


def test_slice_respects_declared_lsb():
    a = Signal("a", 8, SignalKind.WIRE, lsb=8)  # declared as [15:8]
    view = DictView({a: 0xA5})
    assert Slice(a, 15, 8).eval(view) == 0xA5
    assert Slice(a, 9, 8).eval(view) == 1


def test_slice_out_of_range_rejected():
    with pytest.raises(SimulationError):
        Slice(sig("a", 8), 8, 0)


def test_index_bit_select_and_out_of_range():
    a = sig("a", 8)
    view = DictView({a: 0b1000_0001})
    assert Index(a, Const(0, 4)).eval(view) == 1
    assert Index(a, Const(7, 4)).eval(view) == 1
    assert Index(a, Const(9, 4)).eval(view) == 0


def test_index_memory_word():
    m = sig("m", 8, depth=4)
    idx = sig("i", 2)
    view = DictView({idx: 2}, {(m, 2): 0x5A})
    assert Index(m, SigRef(idx)).eval(view) == 0x5A
    view.values[idx] = 3
    assert Index(m, SigRef(idx)).eval(view) == 0


def test_arithmetic_wraps_to_width():
    a, b = sig("a"), sig("b")
    view = DictView({a: 0xFF, b: 0x01})
    assert Binary("+", SigRef(a), SigRef(b)).eval(view) == 0
    assert Binary("-", SigRef(b), SigRef(a)).eval(view) == 2
    assert Binary("*", SigRef(a), SigRef(a)).eval(view) == (0xFF * 0xFF) & 0xFF


def test_division_and_modulo_by_zero():
    a, b = sig("a"), sig("b")
    view = DictView({a: 10, b: 0})
    assert Binary("/", SigRef(a), SigRef(b)).eval(view) == 0xFF
    assert Binary("%", SigRef(a), SigRef(b)).eval(view) == 0


def test_comparisons_are_single_bit():
    a, b = sig("a"), sig("b")
    view = DictView({a: 5, b: 9})
    assert Binary("<", SigRef(a), SigRef(b)).width == 1
    assert Binary("<", SigRef(a), SigRef(b)).eval(view) == 1
    assert Binary(">=", SigRef(a), SigRef(b)).eval(view) == 0
    assert Binary("==", SigRef(a), SigRef(a)).eval(view) == 1


def test_logical_operators():
    a, b = sig("a"), sig("b")
    view = DictView({a: 0, b: 7})
    assert Binary("&&", SigRef(a), SigRef(b)).eval(view) == 0
    assert Binary("||", SigRef(a), SigRef(b)).eval(view) == 1


def test_shifts():
    a, b = sig("a"), sig("b", 4)
    view = DictView({a: 0x81, b: 1})
    assert Binary("<<", SigRef(a), SigRef(b)).eval(view) == 0x02
    assert Binary(">>", SigRef(a), SigRef(b)).eval(view) == 0x40
    view.values[b] = 9
    assert Binary("<<", SigRef(a), SigRef(b)).eval(view) == 0


def test_arithmetic_shift_right_sign_fills():
    a, b = sig("a"), sig("b", 4)
    view = DictView({a: 0x80, b: 3})
    assert Binary(">>>", SigRef(a), SigRef(b)).eval(view) == 0xF0


def test_unary_operators():
    a = sig("a", 4)
    view = DictView({a: 0b1010})
    assert Unary("~", SigRef(a)).eval(view) == 0b0101
    assert Unary("-", SigRef(a)).eval(view) == 0b0110
    assert Unary("!", SigRef(a)).eval(view) == 0
    assert Unary("&", SigRef(a)).eval(view) == 0
    assert Unary("|", SigRef(a)).eval(view) == 1
    assert Unary("^", SigRef(a)).eval(view) == 0
    assert Unary("~|", SigRef(a)).eval(view) == 0


def test_ternary_selects_branch():
    c, a, b = sig("c", 1), sig("a"), sig("b")
    view = DictView({c: 1, a: 3, b: 9})
    expr = Ternary(SigRef(c), SigRef(a), SigRef(b))
    assert expr.eval(view) == 3
    view.values[c] = 0
    assert expr.eval(view) == 9


def test_concat_and_replication():
    a, b = sig("a", 4), sig("b", 4)
    view = DictView({a: 0xA, b: 0x5})
    assert Concat([SigRef(a), SigRef(b)]).eval(view) == 0xA5
    assert Repl(3, SigRef(b)).eval(view) == 0x555
    assert Concat([SigRef(a), SigRef(b)]).width == 8


def test_read_set_collects_all_signals():
    a, b, c = sig("a"), sig("b"), sig("c", 2)
    expr = Ternary(SigRef(c), Binary("+", SigRef(a), SigRef(b)), Const(0, 8))
    assert expr.read_set() == frozenset({a, b, c})


def test_invalid_operator_rejected():
    with pytest.raises(SimulationError):
        Binary("**", Const(1), Const(2))
    with pytest.raises(SimulationError):
        Unary("?", Const(1))


@given(st.integers(0, 255), st.integers(0, 255))
def test_add_matches_python_mod_256(x, y):
    a, b = sig("a"), sig("b")
    view = DictView({a: x, b: y})
    assert Binary("+", SigRef(a), SigRef(b)).eval(view) == (x + y) % 256


@given(st.integers(0, 255), st.integers(0, 255))
def test_bitwise_ops_match_python(x, y):
    a, b = sig("a"), sig("b")
    view = DictView({a: x, b: y})
    assert Binary("&", SigRef(a), SigRef(b)).eval(view) == (x & y)
    assert Binary("|", SigRef(a), SigRef(b)).eval(view) == (x | y)
    assert Binary("^", SigRef(a), SigRef(b)).eval(view) == (x ^ y)


@given(st.integers(0, 255), st.integers(0, 7))
def test_shift_right_arithmetic_matches_signed_python(x, shift):
    a, b = sig("a"), sig("b", 3)
    view = DictView({a: x, b: shift})
    expected = (to_signed(x, 8) >> shift) & 0xFF
    assert Binary(">>>", SigRef(a), SigRef(b)).eval(view) == expected


@given(st.integers(0, 65535))
def test_concat_slice_roundtrip(value):
    a = sig("a", 16)
    view = DictView({a: value})
    rebuilt = Concat([Slice(a, 15, 8), Slice(a, 7, 0)]).eval(view)
    assert rebuilt == value
