"""Tests for the stuck-at fault model, fault lists and coverage reporting."""

import pytest

from repro.errors import FaultModelError
from repro.fault.coverage import FaultCoverageReport
from repro.fault.detection import ObservationManager
from repro.fault.faultlist import (
    FaultList,
    faults_on_signals,
    generate_stuck_at_faults,
    sample_faults,
)
from repro.fault.model import StuckAtFault
from repro.ir.signal import Signal, SignalKind


def sig(name="s", width=8, depth=None, kind=SignalKind.WIRE):
    return Signal(name, width, kind, depth=depth)


def test_fault_forcing():
    fault0 = StuckAtFault(sig(), 2, 0)
    fault1 = StuckAtFault(sig(), 2, 1)
    assert fault0.force(0xFF) == 0xFB
    assert fault1.force(0x00) == 0x04
    assert fault0.is_forced(0xFB)
    assert not fault0.is_forced(0xFF)


def test_fault_name():
    fault = StuckAtFault(sig("u0.q"), 3, 1)
    assert fault.name == "u0.q[3]:SA1"


def test_fault_validation():
    with pytest.raises(FaultModelError):
        StuckAtFault(sig(width=4), 4, 0)
    with pytest.raises(FaultModelError):
        StuckAtFault(sig(), 0, 2)
    with pytest.raises(FaultModelError):
        StuckAtFault(sig(depth=8), 0, 0)


def test_fault_equality_and_hash():
    s = sig()
    assert StuckAtFault(s, 1, 0) == StuckAtFault(s, 1, 0)
    assert StuckAtFault(s, 1, 0) != StuckAtFault(s, 1, 1)
    assert len({StuckAtFault(s, 1, 0), StuckAtFault(s, 1, 0)}) == 1


def test_fault_list_assigns_dense_ids():
    s = sig()
    faults = FaultList([StuckAtFault(s, b, v) for b in range(4) for v in (0, 1)])
    assert [f.fault_id for f in faults] == list(range(8))
    assert len(faults) == 8
    assert faults.by_name("s[0]:SA0").fault_id == 0
    with pytest.raises(FaultModelError):
        faults.by_name("nope")


def test_fault_list_deduplicates():
    s = sig()
    faults = FaultList()
    first = faults.add(StuckAtFault(s, 0, 0))
    second = faults.add(StuckAtFault(s, 0, 0))
    assert first is second
    assert len(faults) == 1


def test_generate_faults_counts(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    expected_bits = sum(s.width for s in counter_design.signals if not s.is_memory)
    assert len(faults) == 2 * expected_bits


def test_generate_faults_excludes_memories(memory_design):
    faults = generate_stuck_at_faults(memory_design)
    assert all(not f.signal.is_memory for f in faults)


def test_generate_faults_filters(counter_design):
    no_ports = generate_stuck_at_faults(counter_design, include_ports=False)
    assert all(not f.signal.kind.is_port for f in no_ports)
    only_ports = generate_stuck_at_faults(counter_design, include_internal=False)
    assert all(f.signal.kind.is_port for f in only_ports)
    capped = generate_stuck_at_faults(counter_design, max_bits_per_signal=1)
    assert all(f.bit == 0 for f in capped)


def test_sample_faults_deterministic(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    a = sample_faults(faults, 10, seed=1)
    b = sample_faults(faults, 10, seed=1)
    c = sample_faults(faults, 10, seed=2)
    assert [f.name for f in a] == [f.name for f in b]
    assert [f.name for f in a] != [f.name for f in c]
    assert len(a) == 10
    assert [f.fault_id for f in a] == list(range(10))


def test_sample_larger_than_population_returns_all(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    assert len(sample_faults(faults, 10_000)) == len(faults)


def test_faults_on_signals(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    subset = faults_on_signals(faults, ["count"])
    assert len(subset) == 8  # 4 bits x sa0/sa1
    assert all(f.signal.name == "count" for f in subset)


def test_observation_manager_detection_flow(counter_design):
    faults = generate_stuck_at_faults(counter_design, max_bits_per_signal=1)
    manager = ObservationManager(counter_design, faults)
    assert manager.live_count == len(faults)
    assert manager.mark_detected(0, cycle=3)
    assert not manager.mark_detected(0, cycle=9)  # already detected
    assert manager.detection_cycle(0) == 3
    assert manager.is_detected(0)
    assert manager.live_count == len(faults) - 1


def test_coverage_report_math(counter_design):
    faults = sample_faults(generate_stuck_at_faults(counter_design), 10, seed=0)
    report = FaultCoverageReport("counter", faults, {0: 1, 3: 2}, simulator="test")
    assert report.total_faults == 10
    assert report.detected_count == 2
    assert report.undetected_count == 8
    assert report.coverage == pytest.approx(20.0)
    assert report.is_detected(faults[0].name)
    assert len(report.undetected_faults()) == 8


def test_coverage_report_comparisons(counter_design):
    faults = sample_faults(generate_stuck_at_faults(counter_design), 6, seed=0)
    a = FaultCoverageReport("counter", faults, {0: 1, 1: 1})
    b = FaultCoverageReport("counter", faults, {0: 2, 1: 5})
    c = FaultCoverageReport("counter", faults, {0: 1, 2: 1})
    assert a.same_verdicts(b)          # detection cycles may differ
    assert not a.same_verdicts(c)
    assert a.disagreements(c) == sorted([faults[1].name, faults[2].name])


def test_empty_fault_list_coverage():
    report = FaultCoverageReport("d", FaultList(), {})
    assert report.coverage == 0.0
