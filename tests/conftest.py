"""Shared fixtures built on the designs in :mod:`fixture_designs`.

The Verilog sources themselves live in ``fixture_designs.py`` (an importable,
uniquely-named helper) so that test modules never ``from conftest import ...``
— that import resolves to whichever ``conftest.py`` pytest saw first and
breaks when the repo root holds more than one test directory.
"""

from __future__ import annotations

import os

import pytest

from fixture_designs import (  # noqa: F401  (re-exported for older callers)
    CASE_FSM_SRC,
    COUNTER_SRC,
    HIERARCHY_SRC,
    MEMORY_SRC,
    MUX_PIPELINE_SRC,
)
from repro.api import compile_design
from repro.sim.stimulus import RandomStimulus

#: Where Linux exposes POSIX shared-memory segments as files.  The verdict
#: plane's magic is at offset 0 of every segment, so a leak scan is a 4-byte
#: read per candidate.
_SHM_DIR = "/dev/shm"


def _verdict_plane_segments() -> set:
    """Names of live shared-memory segments stamped with the RVP1 magic."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # non-Linux / no shm mount: the scan degrades to a no-op
        return set()
    found = set()
    for entry in entries:
        try:
            with open(os.path.join(_SHM_DIR, entry), "rb") as handle:
                if handle.read(4) == b"RVP1":
                    found.add(entry)
        except OSError:  # raced with deletion, or unreadable — not a leak
            continue
    return found


@pytest.fixture(autouse=True)
def _no_leaked_verdict_planes():
    """Fail any test that strands a verdict-plane shared-memory segment.

    Campaigns promise to unlink their plane on *every* exit path (success,
    salvage, KeyboardInterrupt); a stray ``RVP1`` segment after a test means
    an exit path broke that promise.  Only segments *created during the
    test* count — pre-existing ones (e.g. another process on a shared CI
    box) are ignored.
    """
    before = _verdict_plane_segments()
    yield
    leaked = _verdict_plane_segments() - before
    assert not leaked, (
        f"test leaked verdict-plane shared-memory segment(s): {sorted(leaked)}"
    )


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seed",
        action="store",
        type=int,
        default=None,
        help="override the fixed stimulus seeds of the cross-engine "
        "differential fuzz suite (tests/test_fuzz_parity.py) with one "
        "chosen seed — the nightly CI leg passes a fresh value here",
    )


@pytest.fixture
def counter_design():
    return compile_design(COUNTER_SRC, top="counter")


@pytest.fixture
def mux_design():
    return compile_design(MUX_PIPELINE_SRC, top="mux_pipeline")


@pytest.fixture
def memory_design():
    return compile_design(MEMORY_SRC, top="scratchpad")


@pytest.fixture
def hierarchy_design():
    return compile_design(HIERARCHY_SRC, top="wrapper")


@pytest.fixture
def fsm_design():
    return compile_design(CASE_FSM_SRC, top="fsm")


@pytest.fixture
def counter_stimulus():
    return RandomStimulus(
        {"en": 1, "load": 1, "din": 4},
        cycles=50,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=7,
    )


@pytest.fixture
def mux_stimulus():
    return RandomStimulus(
        {"sel": 1, "a": 8, "b": 8, "c": 8},
        cycles=50,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=11,
    )


@pytest.fixture
def memory_stimulus():
    return RandomStimulus(
        {"we": 1, "waddr": 3, "raddr": 3, "wdata": 8},
        cycles=60,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=13,
    )


@pytest.fixture
def fsm_stimulus():
    return RandomStimulus(
        {"go": 1, "stop": 1},
        cycles=60,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=17,
    )
