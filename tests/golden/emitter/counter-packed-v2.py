# repro packed codegen kernel v2
# design: counter
# lanes=4 stride=33
_W = 4
_S = 33
_SP = _S - 1
_SM = (1 << _S) - 1
_F = (1 << (_W * _S)) - 1
_R1 = _F // _SM
_RH = _R1 << _SP
_NZC = _R1 * ((1 << _SP) - 1)

def _repl(v):
    return v * _R1


def _nz(x):
    # per-lane "value != 0" -> one bit at each lane base (lanes < 2**_SP)
    return ((x + _NZC) >> _SP) & _R1


def _eqz(x):
    return ((((x + _NZC) >> _SP) & _R1) ^ _R1)


def _mrd(mem, ovl, ix):
    # packed memory read: word gather at (possibly lane-divergent) addresses
    i0 = ix & _SM
    if ix == i0 * _R1:
        if i0 >= len(mem):
            return 0
        if ovl is not None:
            return ovl.get(i0, mem[i0])
        return mem[i0]
    r = 0
    off = 0
    for _ in range(_W):
        a = (ix >> off) & _SM
        if a < len(mem):
            wv = ovl.get(a, mem[a]) if ovl is not None else mem[a]
            r |= wv & (_SM << off)
        off += _S
    return r


def _mwr(mem, ovl, ix, v, wbits, p):
    # predicated packed memory write into a blocking overlay
    i0 = ix & _SM
    if ix == i0 * _R1:
        if i0 < len(mem):
            pm = (p << wbits) - p
            old = ovl.get(i0, mem[i0])
            ovl[i0] = (old & (pm ^ _F)) | (v & pm)
        return
    off = 0
    for _ in range(_W):
        if (p >> off) & 1:
            a = (ix >> off) & _SM
            if a < len(mem):
                lm = ((1 << wbits) - 1) << off
                old = ovl.get(a, mem[a])
                ovl[a] = (old & ~lm) | (v & lm)
        off += _S


def _bidx(x, ix, width, lsb):
    # per-lane dynamic bit read x[ix], out-of-range lanes read 0
    i0 = (ix & _SM) - lsb
    if ix == (ix & _SM) * _R1:
        if 0 <= i0 < width:
            return (x >> i0) & _R1
        return 0
    r = 0
    off = 0
    for _ in range(_W):
        a = ((ix >> off) & _SM) - lsb
        if 0 <= a < width:
            r |= ((x >> (off + a)) & 1) << off
        off += _S
    return r


def _bset(x, ix, v, width, lsb, p):
    # predicated dynamic bit write; out-of-range lanes are left untouched
    i0 = (ix & _SM) - lsb
    if ix == (ix & _SM) * _R1:
        if 0 <= i0 < width:
            m = p << i0
            return (x & (m ^ _F)) | ((v << i0) & m)
        return x
    off = 0
    for _ in range(_W):
        if (p >> off) & 1:
            a = ((ix >> off) & _SM) - lsb
            if 0 <= a < width:
                b = off + a
                x = (x & ~(1 << b)) | (((v >> off) & 1) << b)
        off += _S
    return x


def _bnba(ix, v, width, lsb, p):
    # non-blocking dynamic bit write -> (write mask, value in place)
    i0 = (ix & _SM) - lsb
    if ix == (ix & _SM) * _R1:
        if 0 <= i0 < width:
            m = p << i0
            return m, (v << i0) & m
        return 0, 0
    wm = 0
    vip = 0
    off = 0
    for _ in range(_W):
        if (p >> off) & 1:
            a = ((ix >> off) & _SM) - lsb
            if 0 <= a < width:
                b = off + a
                wm |= 1 << b
                vip |= ((v >> off) & 1) << b
        off += _S
    return wm, vip


def _pmul(a, b, m):
    r = 0
    off = 0
    for _ in range(_W):
        r |= ((((a >> off) & _SM) * ((b >> off) & _SM)) & m) << off
        off += _S
    return r


def _pdiv(a, b, m):
    r = 0
    off = 0
    for _ in range(_W):
        y = (b >> off) & _SM
        r |= (((((a >> off) & _SM) // y) & m) if y else m) << off
        off += _S
    return r


def _pmod(a, b, m):
    r = 0
    off = 0
    for _ in range(_W):
        y = (b >> off) & _SM
        if y:
            r |= ((((a >> off) & _SM) % y) & m) << off
        off += _S
    return r


def _pshl(a, b, w, m):
    r = 0
    off = 0
    for _ in range(_W):
        s = (b >> off) & _SM
        if s < w:
            r |= ((((a >> off) & _SM) << s) & m) << off
        off += _S
    return r


def _pshr(a, b, w):
    r = 0
    off = 0
    for _ in range(_W):
        s = (b >> off) & _SM
        if s < w:
            r |= (((a >> off) & _SM) >> s) << off
        off += _S
    return r


def _psra(a, b, w, m):
    r = 0
    off = 0
    sb = 1 << (w - 1)
    for _ in range(_W):
        x = (a >> off) & _SM
        s = (b >> off) & _SM
        if s > w:
            s = w
        if x & sb:
            x -= 1 << w
        r |= ((x >> s) & m) << off
        off += _S
    return r


def _publish(upd, V, M, FB, FO, FN, VER, GC):
    # apply (sid, write_mask, word_index, value_in_place) updates with
    # per-lane blending, change detection, the forcing guard and the
    # scheduler version stamps (unread when the event_scheduler pass is off)
    ch = False
    for i, wm, wi, val in upd:
        if wi is not None:
            mem = M[i]
            i0 = wi & _SM
            if wi == i0 * _R1:
                if i0 < len(mem):
                    old = mem[i0]
                    nv = (old & (wm ^ _F)) | (val & wm)
                    if old != nv:
                        mem[i0] = nv
                        GC[0] = VER[i] = GC[0] + 1
                        ch = True
            else:
                off = 0
                for _ in range(_W):
                    lanebits = wm & (_SM << off)
                    if lanebits:
                        a = (wi >> off) & _SM
                        if a < len(mem):
                            old = mem[a]
                            nv = (old & ~lanebits) | (val & lanebits)
                            if old != nv:
                                mem[a] = nv
                                GC[0] = VER[i] = GC[0] + 1
                                ch = True
                    off += _S
            continue
        old = V[i]
        nv = (old & (wm ^ _F)) | (val & wm)
        if FB[i]:
            nv = (nv | FO[i]) & FN[i]
        if old != nv:
            V[i] = nv
            GC[0] = VER[i] = GC[0] + 1
            ch = True
    return ch

_K0 = _repl(15)
_K1 = _repl(4294967295)

def _bn0(V, M, FB, FO, FN, upd, p):
    n = []
    _t1 = V[1]
    _t2 = _t1 & p
    if _t2:
        _t3 = ((_t2 << 4) - _t2)
        n.append((5, _t3, None, (0) & _K0))
    _t4 = (_t1 ^ _R1) & p
    if _t4:
        _t5 = V[3]
        _t6 = _t5 & _t4
        if _t6:
            _t7 = ((_t6 << 4) - _t6)
            n.append((5, _t7, None, (V[4]) & _K0))
        _t8 = (_t5 ^ _R1) & _t4
        if _t8:
            _t9 = V[2]
            _t10 = _t9 & _t8
            if _t10:
                _t11 = ((_t10 << 4) - _t10)
                n.append((5, _t11, None, (V[7]) & _K0))
    upd.extend(n)

def comb_pass(V, M, FB, FO, FN, VER, LS, GC):
    ch = False
    _ls = LS[0]
    if VER[5] > _ls:
        LS[0] = GC[0]
        _x = (((V[5] + _R1) & _K1)) & _K0
        if FB[7]: _x = (_x | FO[7]) & FN[7]
        if V[7] != _x:
            V[7] = _x; GC[0] = VER[7] = GC[0] + 1; ch = True
    _ls = LS[1]
    if VER[5] > _ls:
        LS[1] = GC[0]
        _x = ((((((V[5] ^ _K0) + _NZC) >> _SP) & _R1) ^ _R1)) & _R1
        if FB[8]: _x = (_x | FO[8]) & FN[8]
        if V[8] != _x:
            V[8] = _x; GC[0] = VER[8] = GC[0] + 1; ch = True
    _ls = LS[2]
    if VER[2] > _ls or VER[8] > _ls:
        LS[2] = GC[0]
        _x = ((V[8] & V[2])) & _R1
        if FB[6]: _x = (_x | FO[6]) & FN[6]
        if V[6] != _x:
            V[6] = _x; GC[0] = VER[6] = GC[0] + 1; ch = True
    return ch

def comb_once(V, M, FB, FO, FN, VER, LS, GC):
    _ls = LS[0]
    if VER[5] > _ls:
        LS[0] = GC[0]
        _x = (((V[5] + _R1) & _K1)) & _K0
        if FB[7]: _x = (_x | FO[7]) & FN[7]
        if V[7] != _x:
            V[7] = _x; GC[0] = VER[7] = GC[0] + 1
    _ls = LS[1]
    if VER[5] > _ls:
        LS[1] = GC[0]
        _x = ((((((V[5] ^ _K0) + _NZC) >> _SP) & _R1) ^ _R1)) & _R1
        if FB[8]: _x = (_x | FO[8]) & FN[8]
        if V[8] != _x:
            V[8] = _x; GC[0] = VER[8] = GC[0] + 1
    _ls = LS[2]
    if VER[2] > _ls or VER[8] > _ls:
        LS[2] = GC[0]
        _x = ((V[8] & V[2])) & _R1
        if FB[6]: _x = (_x | FO[6]) & FN[6]
        if V[6] != _x:
            V[6] = _x; GC[0] = VER[6] = GC[0] + 1
    return False

def fire_clocked(V, M, EP, FB, FO, FN, VER, GC):
    _a0 = ((EP[0] ^ _R1) & V[0] & _R1)
    EP[0] = V[0]
    if not (_a0):
        return False
    upd = []
    if _a0: _bn0(V, M, FB, FO, FN, upd, _a0)
    _publish(upd, V, M, FB, FO, FN, VER, GC)
    return True

