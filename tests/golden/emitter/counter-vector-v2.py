# repro vector codegen kernel v2
# design: counter
# lane layout: fault-major columns of uint64 plane arrays;
# the lane count is a runtime property of the value arrays,
# so one cached module serves every campaign width
import numpy as np

_T = np.uint64
_T0 = _T(0)
_T1 = _T(1)
_TF = _T(0xFFFFFFFFFFFFFFFF)
_IX = np.intp


def _a2(v):
    # normalize a value (int literal / 1-D / 2-D array) to a (planes, n) array
    a = np.asarray(v, _T)
    if a.ndim == 0:
        return a.reshape(1, 1)
    if a.ndim == 1:
        return a.reshape(1, -1)
    return a


def _pb(p):
    # normalize a lane predicate (bool (1, n) array or np.bool_ scalar) to 1-D
    return np.asarray(p).reshape(1, -1)[0]


def _kc(v, planes):
    # bit-slice an arbitrary-precision constant into a (planes, 1) plane column
    return np.array(
        [[(v >> (64 * k)) & 0xFFFFFFFFFFFFFFFF] for k in range(planes)], _T
    )


_LC = {}


def _ln(n):
    a = _LC.get(n)
    if a is None:
        a = np.arange(n, dtype=_IX)
        _LC[n] = a
    return a


def _xp(x, planes):
    # zero-extend a value to ``planes`` planes (no-op when already wide enough)
    x = _a2(x)
    if x.shape[0] >= planes:
        return x
    out = np.zeros((planes, x.shape[1]), _T)
    out[: x.shape[0]] = x
    return out


def _mtp(x, m):
    # truncate: copy, then mask the top plane
    r = _a2(x).copy()
    r[-1] = r[-1] & _T(m)
    return r


def _bf(x, v):
    # broadcast a constant store over the lane shape of an existing value
    return np.broadcast_to(np.asarray(v, _T), x.shape)


def _vst(V, i, x):
    # change-tracked value store (values are never mutated in place); the
    # broadcast normalization only fires for literal / (P, 1) stores — lane
    # expressions already carry the full shape, and np.broadcast_to is a
    # (surprisingly costly) Python-level call on the hot node path
    old = V[i]
    if type(x) is not np.ndarray or x.shape != old.shape:
        x = np.broadcast_to(np.asarray(x, _T), old.shape)
    if np.array_equal(old, x):
        return False
    V[i] = x
    return True


def _vsn(V, i, x):
    old = V[i]
    if type(x) is not np.ndarray or x.shape != old.shape:
        x = np.broadcast_to(np.asarray(x, _T), old.shape)
    V[i] = x


def _okx(ix, bound):
    # (plane-0 index, lane-wise in-range flag) of a possibly multi-plane index
    ix = _a2(ix)
    i = ix[0]
    ok = i < bound
    for k in range(1, ix.shape[0]):
        ok = ok & (ix[k] == 0)
    return i, ok


def _mrd(mem, ix):
    # memory read: out-of-range lanes read 0; the result must NOT alias the
    # backing rows (memories are the one structure mutated in place)
    d, L = mem.shape
    i, ok = _okx(ix, d)
    if i.shape[0] == 1:
        if ok[0]:
            return mem[int(i[0])][None, :].copy()
        return np.zeros((1, L), _T)
    safe = np.where(ok, i, _T0).astype(_IX)
    return np.where(ok, mem[safe, _ln(L)], _T0)[None, :]


def _mst(mem, fresh, ix, v, p):
    # blocking memory write through a copy-on-first-write overlay: ``fresh``
    # means ``mem`` is still the committed array and must not be touched
    d, L = mem.shape
    i, ok = _okx(ix, d)
    i = np.broadcast_to(i, (L,))
    ok = np.broadcast_to(ok, (L,))
    if p is not None:
        ok = ok & np.broadcast_to(_pb(p), (L,))
    if not ok.any():
        return None if fresh else mem
    out = mem.copy() if fresh else mem
    vv = np.broadcast_to(_a2(v)[0], (L,))
    out[i[ok].astype(_IX), _ln(L)[ok]] = vv[ok]
    return out


def _bix(x, ix, width, lsb):
    # dynamic bit select: out-of-range lanes read 0
    x = _a2(x)
    ixa = _a2(ix)
    j = (ixa[0] - _T(lsb)) if lsb else ixa[0]
    ok = j < width
    for k in range(1, ixa.shape[0]):
        ok = ok & (ixa[k] == 0)
    n = max(x.shape[1], j.shape[0])
    jb = np.broadcast_to(j, (n,))
    okb = np.broadcast_to(ok, (n,))
    js = np.where(okb, jb, _T0)
    if x.shape[0] == 1:
        v = (np.broadcast_to(x[0], (n,)) >> js) & _T1
    else:
        q = (js >> _T(6)).astype(_IX)
        r = js & _T(63)
        xb = np.broadcast_to(x, (x.shape[0], n))
        v = (xb[q, _ln(n)] >> r) & _T1
    return np.where(okb, v, _T0)[None, :]


def _bst(x, ix, v, width, lsb, p):
    # blocking dynamic bit write (out-of-range lanes keep their value)
    x = _a2(x)
    ixa = _a2(ix)
    j = (ixa[0] - _T(lsb)) if lsb else ixa[0]
    ok = j < width
    for k in range(1, ixa.shape[0]):
        ok = ok & (ixa[k] == 0)
    va = _a2(v)[0]
    n = max(x.shape[1], j.shape[0], va.shape[0])
    if p is not None:
        pv = _pb(p)
        n = max(n, pv.shape[0])
        ok = np.broadcast_to(ok, (n,)) & np.broadcast_to(pv, (n,))
    else:
        ok = np.broadcast_to(ok, (n,))
    out = np.broadcast_to(x, (x.shape[0], n)).copy()
    if not ok.any():
        return out
    js = np.where(ok, np.broadcast_to(j, (n,)), _T0)
    vs = np.where(ok, np.broadcast_to(va, (n,)) & _T1, _T0)
    if out.shape[0] == 1:
        bit = np.where(ok, _T1 << js, _T0)
        out[0] = (out[0] & ~bit) | (vs << js)
    else:
        for k in range(out.shape[0]):
            sel = ok & ((js >> _T(6)) == k)
            if not sel.any():
                continue
            r = js & _T(63)
            bit = np.where(sel, _T1 << r, _T0)
            out[k] = (out[k] & ~bit) | np.where(sel, vs << r, _T0)
    return out


def _bnb(ix, v, width, lsb, p, planes):
    # non-blocking dynamic bit write -> (write_mask, value_in_place) arrays;
    # out-of-range lanes get a zero write mask (the write never lands)
    ixa = _a2(ix)
    j = (ixa[0] - _T(lsb)) if lsb else ixa[0]
    ok = j < width
    for k in range(1, ixa.shape[0]):
        ok = ok & (ixa[k] == 0)
    va = _a2(v)[0]
    n = max(j.shape[0], va.shape[0])
    if p is not None:
        pv = _pb(p)
        n = max(n, pv.shape[0])
        ok = np.broadcast_to(ok, (n,)) & np.broadcast_to(pv, (n,))
    else:
        ok = np.broadcast_to(ok, (n,))
    wm = np.zeros((planes, n), _T)
    vip = np.zeros((planes, n), _T)
    if not ok.any():
        return wm, vip
    js = np.where(ok, np.broadcast_to(j, (n,)), _T0)
    vs = np.where(ok, np.broadcast_to(va, (n,)) & _T1, _T0)
    if planes == 1:
        wm[0] = np.where(ok, _T1 << js, _T0)
        vip[0] = vs << js
    else:
        for k in range(planes):
            sel = ok & ((js >> _T(6)) == k)
            if not sel.any():
                continue
            r = js & _T(63)
            wm[k] = np.where(sel, _T1 << r, _T0)
            vip[k] = np.where(sel, vs << r, _T0)
    return wm, vip


def _add(a, b, m, c0=0):
    # multi-plane ripple add over 64-bit limbs, top plane masked to ``m``
    a = _a2(a)
    b = _a2(b)
    n = max(a.shape[1], b.shape[1])
    out = np.empty((a.shape[0], n), _T)
    carry = np.full((n,), c0, _T)
    for k in range(a.shape[0]):
        ak = np.broadcast_to(a[k], (n,))
        bk = np.broadcast_to(b[k], (n,))
        s = ak + bk
        c1 = s < ak
        s = s + carry
        c2 = s < carry
        out[k] = s
        carry = (c1 | c2).astype(_T)
    out[-1] = out[-1] & _T(m)
    return out


def _sub(a, b, m):
    # a - b == a + ~b + 1 (mod 2**(64*planes)), then top-plane truncation
    return _add(a, _a2(b) ^ _TF, m, 1)


def _lt(a, b):
    # lexicographic unsigned compare from the top plane down -> uint64 0/1
    a = _a2(a)
    b = _a2(b)
    n = max(a.shape[1], b.shape[1])
    lt = np.zeros((n,), bool)
    done = np.zeros((n,), bool)
    for k in range(a.shape[0] - 1, -1, -1):
        ak = np.broadcast_to(a[k], (n,))
        bk = np.broadcast_to(b[k], (n,))
        lt = np.where(~done & (ak < bk), True, lt)
        done = done | (ak != bk)
    return lt.astype(_T)[None, :]


def _inv(x, m):
    r = _a2(x) ^ _TF
    r[-1] = r[-1] & _T(m)
    return r


def _par(x):
    # parity: fold the planes together, then fold 64 bits down to 1
    x = _a2(x)
    t = x[0]
    for k in range(1, x.shape[0]):
        t = t ^ x[k]
    for s in (32, 16, 8, 4, 2, 1):
        t = t ^ (t >> _T(s))
    return (t & _T1)[None, :]


def _dv(a, b, m):
    # Verilog x/0 == all-ones
    av = _a2(a)[0:1]
    bv = _a2(b)[0:1]
    bz = bv == 0
    return np.where(bz, _T(m), av // np.where(bz, _T1, bv))


def _md(a, b):
    # Verilog x%0 == 0
    av = _a2(a)[0:1]
    bv = _a2(b)[0:1]
    bz = bv == 0
    return np.where(bz, _T0, av % np.where(bz, _T1, bv))


def _sv(b):
    # (plane-0 shift amount, high-planes-zero flag or None) of a shift rhs
    b = _a2(b)
    hz = None
    for k in range(1, b.shape[0]):
        z = b[k : k + 1] == 0
        hz = z if hz is None else hz & z
    return b[0:1], hz


def _shl(a, b, w, m):
    av = _a2(a)[0:1]
    s, hz = _sv(b)
    ok = s < w
    if hz is not None:
        ok = ok & hz
    ss = np.where(ok, s, _T0)
    return np.where(ok, (av << ss) & _T(m), _T0)


def _shr(a, b, w):
    av = _a2(a)[0:1]
    s, hz = _sv(b)
    ok = s < w
    if hz is not None:
        ok = ok & hz
    ss = np.where(ok, s, _T0)
    return np.where(ok, av >> ss, _T0)


def _sra(a, b, w):
    # arithmetic shift right, shift clamped to ``w`` (full shift -> sign fill)
    av = _a2(a)[0:1]
    s, hz = _sv(b)
    full = ~(s < w)
    if hz is not None:
        full = full | ~hz
    m = _T((1 << w) - 1)
    sign = (av >> _T(w - 1)) & _T1
    ss = np.where(full, _T0, s)
    part = (av >> ss) | (sign * (m ^ (m >> ss)))
    return np.where(full, sign * m, part)


def _toi(x, n):
    # plane columns -> per-lane Python bigints
    x = _a2(x)
    xb = np.broadcast_to(x, (x.shape[0], n))
    cols = [0] * n
    for k in range(x.shape[0] - 1, -1, -1):
        row = xb[k].tolist()
        cols = [(c << 64) | v for c, v in zip(cols, row)]
    return cols


def _plf(op, a, b, w, planes):
    # per-lane bigint fallback for the genuinely serial multi-plane operators
    a = _a2(a)
    b = _a2(b)
    n = max(a.shape[1], b.shape[1])
    av = _toi(a, n)
    bv = _toi(b, n)
    m = (1 << w) - 1
    res = []
    for x, y in zip(av, bv):
        if op == "mul":
            r = (x * y) & m
        elif op == "div":
            r = ((x // y) & m) if y else m
        elif op == "mod":
            r = (x % y) if y else 0
        elif op == "shl":
            r = ((x << y) & m) if y < w else 0
        elif op == "shr":
            r = (x >> y) if y < w else 0
        else:  # sra
            if x & (1 << (w - 1)):
                x -= 1 << w
            r = (x >> min(y, w)) & m
        res.append(r)
    out = np.empty((planes, n), _T)
    for k in range(planes):
        out[k] = [(r >> (64 * k)) & 0xFFFFFFFFFFFFFFFF for r in res]
    return out


def _sl(x, lsb, w):
    # constant slice [lsb +: w] of a multi-plane value
    x = _a2(x)
    planes = (w + 63) >> 6
    q, r = lsb >> 6, lsb & 63
    out = np.zeros((planes, x.shape[1]), _T)
    xs = x.shape[0]
    for k in range(planes):
        j = q + k
        if j < xs:
            v = (x[j] >> _T(r)) if r else x[j]
            if r and j + 1 < xs:
                v = v | (x[j + 1] << _T(64 - r))
            out[k] = v
    t = w & 63
    if t:
        out[-1] = out[-1] & _T((1 << t) - 1)
    return out


def _shlc(x, c, w):
    # constant left shift into a ``w``-bit multi-plane result
    x = _a2(x)
    planes = (w + 63) >> 6
    q, r = c >> 6, c & 63
    out = np.zeros((planes, x.shape[1]), _T)
    xs = x.shape[0]
    for k in range(planes):
        j = k - q
        if 0 <= j < xs:
            out[k] = (x[j] << _T(r)) if r else x[j]
        if r and 0 <= j - 1 < xs:
            out[k] = out[k] | (x[j - 1] >> _T(64 - r))
    t = w & 63
    if t:
        out[-1] = out[-1] & _T((1 << t) - 1)
    return out


def _cat(parts, w):
    # concat of (value, width) parts, first part highest (values pre-truncated)
    planes = (w + 63) >> 6
    shift = w
    acc = None
    for v, pw in parts:
        shift -= pw
        ve = _xp(v, planes)
        sh = _shlc(ve, shift, w) if shift else ve
        acc = sh if acc is None else acc | sh
    return acc


_KM = {}


def _ins(base, v, lsb, w, sw):
    # constant slice insert: keep-mask blend plus a shifted-in value
    planes = (sw + 63) >> 6
    key = (lsb, w, sw)
    keep = _KM.get(key)
    if keep is None:
        kv = ((1 << sw) - 1) & ~(((1 << w) - 1) << lsb)
        keep = _kc(kv, planes)
        _KM[key] = keep
    return (_a2(base) & keep) | _shlc(_xp(v, planes), lsb, sw)


def _msc(mem, p, ix, v):
    # non-blocking memory scatter (one element per lane; no collisions)
    d, L = mem.shape
    i, ok = _okx(ix, d)
    i = np.broadcast_to(i, (L,))
    ok = np.broadcast_to(ok, (L,))
    if p is not None:
        ok = ok & np.broadcast_to(_pb(p), (L,))
    if not ok.any():
        return False
    a = i[ok].astype(_IX)
    l = _ln(L)[ok]
    nv = np.broadcast_to(_a2(v)[0], (L,))[ok]
    old = mem[a, l]
    diff = old != nv
    if not diff.any():
        return False
    mem[a[diff], l[diff]] = nv[diff]
    return True


def _publish(upd, V, M, FB, FO, FN):
    # the NBA region: (sid, write_mask, word_index, value_in_place) tuples.
    # write_mask None -> full replace; bool array -> lane blend; uint64 ->
    # bit blend.  word_index True commits a whole-memory overlay.
    ch = False
    for i, wm, wi, val in upd:
        if wi is not None:
            if wi is True:
                mem = M[i]
                if not np.array_equal(mem, val):
                    np.copyto(mem, val)
                    ch = True
            elif _msc(M[i], wm, wi, val):
                ch = True
            continue
        old = V[i]
        if wm is None:
            nv = val
        elif np.asarray(wm).dtype.kind == "b":
            nv = np.where(wm, val, old)
        else:
            nv = old ^ ((old ^ val) & wm)
        if FB[i]:
            nv = (nv | FO[i]) & FN[i]
        if type(nv) is not np.ndarray or nv.shape != old.shape:
            nv = np.broadcast_to(np.asarray(nv, _T), old.shape)
        if not np.array_equal(old, nv):
            V[i] = nv
            ch = True
    return ch

def _bn0(V, M, FB, FO, FN, upd, p):
    n = []
    _t1 = (V[1] != 0)
    _t2 = _t1 & p
    if _t2.any():
        n.append((5, _t2, None, 0))
    _t3 = ~_t1 & p
    if _t3.any():
        _t4 = (V[3] != 0)
        _t5 = _t4 & _t3
        if _t5.any():
            n.append((5, _t5, None, V[4]))
        _t6 = ~_t4 & _t3
        if _t6.any():
            _t7 = (V[2] != 0)
            _t8 = _t7 & _t6
            if _t8.any():
                n.append((5, _t8, None, V[7]))
    upd.extend(n)

def comb_pass(V, M, FB, FO, FN, VER, LS, GC):
    ch = False
    _x = ((((V[5] + 1) & 4294967295)) & 15)
    if FB[7]: _x = (_x | FO[7]) & FN[7]
    if _vst(V, 7, _x): ch = True
    _x = ((V[5] == 15).astype(_T))
    if FB[8]: _x = (_x | FO[8]) & FN[8]
    if _vst(V, 8, _x): ch = True
    _x = (V[8] & V[2])
    if FB[6]: _x = (_x | FO[6]) & FN[6]
    if _vst(V, 6, _x): ch = True
    return ch

def comb_once(V, M, FB, FO, FN, VER, LS, GC):
    _x = ((((V[5] + 1) & 4294967295)) & 15)
    if FB[7]: _x = (_x | FO[7]) & FN[7]
    V[7] = _x
    _x = ((V[5] == 15).astype(_T))
    if FB[8]: _x = (_x | FO[8]) & FN[8]
    V[8] = _x
    _x = (V[8] & V[2])
    if FB[6]: _x = (_x | FO[6]) & FN[6]
    V[6] = _x
    return False

def fire_clocked(V, M, EP, FB, FO, FN, VER, GC):
    _a0 = (((EP[0][:1] & _T1) == 0) & ((V[0][:1] & _T1) == 1))
    EP[0] = V[0]
    if not (_a0).any():
        return False
    upd = []
    if _a0.any(): _bn0(V, M, FB, FO, FN, upd, _a0)
    _publish(upd, V, M, FB, FO, FN)
    return True

