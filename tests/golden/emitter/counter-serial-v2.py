# repro codegen kernel v2
# design: counter
# signals=9 rtl=3 behavioral=1

def _publish(upd, V, M, FA, FO, FN, VER, GC):
    ch = False
    for i, a, b, wi, val in upd:
        if wi is not None:
            mem = M[i]
            if 0 <= wi < len(mem):
                if mem[wi] != val:
                    mem[wi] = val; GC[0] = VER[i] = GC[0] + 1; ch = True
            continue
        old = V[i]
        if a is not None:
            val = (old & ~(((1 << (a - b + 1)) - 1) << b)) | (val << b)
        if FA: val = (val | FO[i]) & FN[i]
        if old != val:
            V[i] = val; GC[0] = VER[i] = GC[0] + 1; ch = True
    return ch

def _bn0(V, M, FA, FO, FN, upd):
    n = []
    if V[1]:
        n.append((5, None, None, None, (0) & 15))
    else:
        if V[3]:
            n.append((5, None, None, None, (V[4]) & 15))
        else:
            if V[2]:
                n.append((5, None, None, None, (V[7]) & 15))
    upd.extend(n)

def comb_pass(V, M, FA, FO, FN, VER, LS, GC):
    ch = False
    _ls = LS[0]
    if VER[5] > _ls:
        LS[0] = GC[0]
        _x = (((V[5] + 1) & 4294967295)) & 15
        if FA: _x = (_x | FO[7]) & FN[7]
        if V[7] != _x:
            V[7] = _x; GC[0] = VER[7] = GC[0] + 1; ch = True
    _ls = LS[1]
    if VER[5] > _ls:
        LS[1] = GC[0]
        _x = ((1 if V[5] == 15 else 0)) & 1
        if FA: _x = (_x | FO[8]) & FN[8]
        if V[8] != _x:
            V[8] = _x; GC[0] = VER[8] = GC[0] + 1; ch = True
    _ls = LS[2]
    if VER[2] > _ls or VER[8] > _ls:
        LS[2] = GC[0]
        _x = ((V[8] & V[2])) & 1
        if FA: _x = (_x | FO[6]) & FN[6]
        if V[6] != _x:
            V[6] = _x; GC[0] = VER[6] = GC[0] + 1; ch = True
    return ch

def comb_once(V, M, FA, FO, FN, VER, LS, GC):
    _ls = LS[0]
    if VER[5] > _ls:
        LS[0] = GC[0]
        _x = (((V[5] + 1) & 4294967295)) & 15
        if FA: _x = (_x | FO[7]) & FN[7]
        if V[7] != _x:
            V[7] = _x; GC[0] = VER[7] = GC[0] + 1
    _ls = LS[1]
    if VER[5] > _ls:
        LS[1] = GC[0]
        _x = ((1 if V[5] == 15 else 0)) & 1
        if FA: _x = (_x | FO[8]) & FN[8]
        if V[8] != _x:
            V[8] = _x; GC[0] = VER[8] = GC[0] + 1
    _ls = LS[2]
    if VER[2] > _ls or VER[8] > _ls:
        LS[2] = GC[0]
        _x = ((V[8] & V[2])) & 1
        if FA: _x = (_x | FO[6]) & FN[6]
        if V[6] != _x:
            V[6] = _x; GC[0] = VER[6] = GC[0] + 1
    return False

def fire_clocked(V, M, EP, FA, FO, FN, VER, GC):
    _a0 = ((EP[0] & 1) == 0 and (V[0] & 1) == 1)
    EP[0] = V[0]
    if not (_a0):
        return False
    upd = []
    if _a0: _bn0(V, M, FA, FO, FN, upd)
    _publish(upd, V, M, FA, FO, FN, VER, GC)
    return True

