"""Tests for the Verilog-subset tokenizer."""

import pytest

from repro.errors import LexerError
from repro.hdl.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


def test_keywords_vs_identifiers():
    tokens = tokenize("module foo endmodule")
    assert tokens[0].kind is TokenKind.KEYWORD
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[2].kind is TokenKind.KEYWORD


def test_eof_always_present():
    assert tokenize("")[-1].kind is TokenKind.EOF
    assert tokenize("a b c")[-1].kind is TokenKind.EOF


def test_sized_hex_number():
    token = tokenize("8'hFF")[0]
    assert token.kind is TokenKind.NUMBER
    assert token.value == 255
    assert token.width == 8


def test_sized_binary_number():
    token = tokenize("4'b1010")[0]
    assert token.value == 10
    assert token.width == 4


def test_sized_decimal_number():
    token = tokenize("6'd63")[0]
    assert token.value == 63
    assert token.width == 6


def test_unsized_based_number():
    token = tokenize("'h1A")[0]
    assert token.value == 26
    assert token.width is None


def test_plain_decimal():
    token = tokenize("1234")[0]
    assert token.value == 1234
    assert token.width is None


def test_number_with_underscores():
    token = tokenize("32'hDEAD_BEEF")[0]
    assert token.value == 0xDEADBEEF


def test_number_truncated_to_width():
    token = tokenize("4'hFF")[0]
    assert token.value == 0xF


def test_line_comment_skipped():
    assert texts("a // comment with module keyword\n b") == ["a", "b"]


def test_block_comment_skipped():
    assert texts("a /* b c \n d */ e") == ["a", "e"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("a /* never closed")


def test_directive_line_skipped():
    assert texts("`timescale 1ns/1ps\nmodule") == ["module"]


def test_multichar_operators_maximal_munch():
    ops = texts("<= >= == != <<< >>> << >> && || ~^")
    assert ops == ["<=", ">=", "==", "!=", "<<<", ">>>", "<<", ">>", "&&", "||", "~^"]


def test_operator_positions_tracked():
    token = tokenize("a\n  +")[1]
    assert token.line == 2
    assert token.column == 3


def test_invalid_character_raises():
    with pytest.raises(LexerError):
        tokenize("a \\ b")


def test_string_literal():
    token = tokenize('"hello world"')[0]
    assert token.kind is TokenKind.STRING
    assert token.text == "hello world"


def test_invalid_base_raises():
    with pytest.raises(LexerError):
        tokenize("8'q12")


def test_token_helpers():
    token = tokenize("module")[0]
    assert token.is_kw("module")
    assert not token.is_kw("endmodule")
    op = tokenize("+")[0]
    assert op.is_op("+")
    assert not op.is_op("-")
