"""Tests for the vectorized (NumPy lane array) PPSFP backend.

The strongest check is parity: on corpus benchmarks the vector simulator's
per-fault detection verdicts *and* detection cycles must exactly match both
the serial codegen baseline and the packed-bigint PPSFP campaign, across lane
counts that exercise the degenerate single-fault case (1), partial last words
and lane counts far past the packed backend's 64-lane ceiling (512).  The
remaining tests pin the seams the vector mode adds: bit-sliced value planes
for signals wider than 64 bits, divergent per-lane memory addressing and
dynamic bit selects, the ``"packed-numpy"`` registry entry and its
missing-NumPy error, the lane-agnostic cache entry, and lane-word sharding.

The whole module skips without NumPy (the ``vector`` extra).
"""

import pytest

np = pytest.importorskip("numpy")

from fixture_designs import MEMORY_SRC
from repro.api import ENGINES, compile_design, make_engine, simulate_good
from repro.baselines.base import SerialFaultSimulator
from repro.designs.registry import get_benchmark
from repro.errors import SimulationError
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.sim.codegen import (
    VECTOR_VERSION,
    design_fingerprint,
    generate_vector_source,
    vector_planes,
)
from repro.sim.engine import EventDrivenEngine
from repro.sim.kernel import SimulationKernel, run_sharded
from repro.sim.packed import PackedCodegenSimulator
from repro.sim.stimulus import RandomStimulus
from repro.sim.vector import (
    VectorCodegenEngine,
    VectorFaultSimulator,
    make_vector_factory,
)

#: Cycles per benchmark for the corpus parity slice.
PARITY_CYCLES = 40

#: Deliberately does not divide any tested width evenly (partial last words).
PARITY_FAULTS = 10

#: Lane-word widths: degenerate serial shape, partial words, and a lane count
#: far beyond the packed backend's 64-lane bigint ceiling.
WIDTHS = [1, 8, 512]

#: A corpus slice that covers the interesting emitter paths: ``alu`` carries a
#: 65-bit signal (multi-plane values), ``riscv_mini`` is memory-heavy, and
#: ``sha256_c2v`` is the arithmetic-dense perf-gate design.  The full ten-way
#: sweep runs in tests/test_fuzz_parity.py on every engine including this one.
PARITY_BENCHMARKS = ["alu", "riscv_mini", "sha256_c2v"]


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Keep every test away from the developer's real ~/.cache/repro-codegen."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


_workloads = {}


def _workload(name):
    """Compile each benchmark once per session, with its references."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=PARITY_CYCLES)
        faults = sample_faults(
            generate_stuck_at_faults(design), PARITY_FAULTS, seed=7
        )
        serial = SerialFaultSimulator(design, engine="codegen").run(
            stimulus, faults
        )
        packed = PackedCodegenSimulator(design, width=8).run(stimulus, faults)
        _workloads[name] = (design, stimulus, faults, serial, packed)
    return _workloads[name]


# ------------------------------------------------------------ the parity sweep
@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name", PARITY_BENCHMARKS)
def test_vector_matches_serial_and_packed(name, width):
    """Verdicts AND detection cycles exact vs codegen serial AND packed."""
    design, stimulus, faults, serial, packed = _workload(name)
    vector = VectorFaultSimulator(design, width=width).run(stimulus, faults)
    assert vector.coverage.same_verdicts(serial.coverage), (
        f"{name} w={width}: verdicts disagree on "
        f"{vector.coverage.disagreements(serial.coverage)}"
    )
    assert vector.coverage.detections == serial.coverage.detections, (
        f"{name} w={width}: detection cycles differ from serial codegen"
    )
    assert vector.coverage.detections == packed.coverage.detections, (
        f"{name} w={width}: detection cycles differ from packed-bigint"
    )


def test_vector_without_early_exit_matches():
    """Lane dropping (early exit) must not change any verdict or cycle."""
    design, stimulus, faults, serial, _ = _workload("alu")
    vector = VectorFaultSimulator(design, width=8, early_exit=False).run(
        stimulus, faults
    )
    assert vector.coverage.detections == serial.coverage.detections


def test_vector_partial_last_word_runs_fewer_lanes():
    """A partial final word runs with exactly its own lanes — no padding."""
    design, stimulus, faults, serial, _ = _workload("alu")
    sim = VectorFaultSimulator(design, width=8)
    result = sim.run(stimulus, faults)
    assert sim.passes == 2  # 10 faults at width 8 -> words of 8 and 2
    assert result.coverage.detections == serial.coverage.detections


# -------------------------------------------------------- multi-plane signals
_WIDE_SRC = """
module wide80(
  input clk,
  input rst,
  input [15:0] a,
  input [15:0] b,
  output reg [79:0] acc,
  output wire [15:0] hi,
  output wire flag,
  output wire [79:0] mix
);
  wire [79:0] wide_a;
  assign wide_a = {a, b, a, b, a};
  assign hi = acc[79:64];
  assign flag = acc > wide_a;
  assign mix = (acc << 7) ^ (acc >> 65) ^ {5{b}};
  always @(posedge clk) begin
    if (rst) acc <= 0;
    else acc <= (acc + wide_a) ^ (wide_a << 3);
  end
endmodule
"""


def test_wide_signal_uses_bit_planes_and_matches_serial():
    """An 80-bit datapath (2 value planes) stays exact across plane seams:
    cross-plane add carries, shifts, slices landing on plane boundaries,
    multi-plane compares and concats."""
    design = compile_design(_WIDE_SRC, top="wide80")
    assert vector_planes(design.signal("acc").width) == 2
    stimulus = RandomStimulus(
        {"a": 16, "b": 16},
        cycles=40,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=23,
    )
    faults = generate_stuck_at_faults(design)
    # includes faults on bits >= 64, i.e. forcing masks in the high plane
    assert any(f.bit >= 64 for f in faults)
    reference = SerialFaultSimulator(design, engine="codegen").run(stimulus, faults)
    vector = VectorFaultSimulator(design, width=48).run(stimulus, faults)
    assert vector.coverage.detections == reference.coverage.detections


# ------------------------------------------------------ lane-divergent corners
def test_divergent_memory_addressing(memory_stimulus):
    """Faults on address bits make lanes gather/scatter different words."""
    design = compile_design(MEMORY_SRC, top="scratchpad")
    population = generate_stuck_at_faults(design)
    faults = type(population)(
        [f for f in population if f.signal.name in ("waddr", "raddr", "we", "wdata")]
    )
    reference = SerialFaultSimulator(design, engine="codegen").run(
        memory_stimulus, faults
    )
    vector = VectorFaultSimulator(design, width=len(faults)).run(
        memory_stimulus, faults
    )
    assert vector.coverage.detections == reference.coverage.detections


_BITSEL_SRC = """
module bitsel(
  input clk,
  input rst,
  input [2:0] idx,
  input bitval,
  input [7:0] base,
  output reg [7:0] q,
  output wire picked
);
  assign picked = q[idx];
  always @(posedge clk) begin
    if (rst) q <= base;
    else q[idx] <= bitval;
  end
endmodule
"""


def test_divergent_dynamic_bit_select():
    """Faults on the select index diverge both the bit read and the bit write."""
    design = compile_design(_BITSEL_SRC, top="bitsel")
    stimulus = RandomStimulus(
        {"idx": 3, "bitval": 1, "base": 8},
        cycles=40,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=29,
    )
    faults = generate_stuck_at_faults(design)
    reference = SerialFaultSimulator(design, engine="codegen").run(stimulus, faults)
    vector = VectorFaultSimulator(design, width=16).run(stimulus, faults)
    assert vector.coverage.detections == reference.coverage.detections


# ----------------------------------------------------------- good-machine seam
def test_vector_engine_in_registry():
    assert "packed-numpy" in ENGINES


def test_vector_good_machine_trace_parity(counter_design, counter_stimulus):
    reference = simulate_good(counter_design, counter_stimulus, engine="event")
    vector = simulate_good(counter_design, counter_stimulus, engine="packed-numpy")
    assert vector == reference


def test_vector_satisfies_kernel_protocol(counter_design):
    engine = VectorCodegenEngine(counter_design, use_cache=False)
    assert isinstance(engine, SimulationKernel)
    assert engine.lanes == 1


def test_vector_force_hook_single_lane(counter_design, counter_stimulus):
    """engine="packed-numpy" under a serial force hook matches the others."""
    count = counter_design.signal("count")

    def hook(signal, value):
        return value | 1 if signal is count else value

    forced = make_engine(counter_design, "packed-numpy", force_hook=hook)
    trace = forced.run(counter_stimulus)
    assert trace == EventDrivenEngine(counter_design, force_hook=hook).run(
        counter_stimulus
    )


def test_serial_baseline_on_vector_engine():
    design, stimulus, faults, serial, _ = _workload("alu")
    swapped = SerialFaultSimulator(design, engine="packed-numpy").run(
        stimulus, faults
    )
    assert swapped.coverage.detections == serial.coverage.detections


def test_vector_engine_rejects_faults_plus_hook(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    with pytest.raises(SimulationError, match="not both"):
        VectorCodegenEngine(
            counter_design,
            force_hook=lambda s, v: v,
            faults=[faults[0]],
            use_cache=False,
        )


def test_vector_engine_rejects_too_few_lanes(counter_design):
    faults = list(generate_stuck_at_faults(counter_design))[:4]
    with pytest.raises(SimulationError, match="lanes"):
        VectorCodegenEngine(counter_design, faults=faults, lanes=3, use_cache=False)


def test_missing_numpy_raises_naming_the_extra(counter_design, monkeypatch):
    """Without NumPy the engine (not the import) fails, naming the extra."""
    import repro.sim.vector as vector_mod

    monkeypatch.setattr(vector_mod, "np", None)
    with pytest.raises(SimulationError, match=r"repro\[vector\]"):
        VectorCodegenEngine(counter_design, use_cache=False)
    with pytest.raises(SimulationError, match=r"repro\[vector\]"):
        VectorFaultSimulator(counter_design)


def test_peek_exposes_faulty_lanes(counter_design, counter_stimulus):
    faults = [generate_stuck_at_faults(counter_design).by_name("count[0]:SA1")]
    engine = VectorCodegenEngine(counter_design, faults=faults, use_cache=False)
    engine.run(counter_stimulus)
    assert engine.peek("count", lane=1) & 1 == 1


# ------------------------------------------------------------------- the cache
def test_vector_cache_key_distinct_and_lane_agnostic(
    tmp_path, monkeypatch, counter_design
):
    """One ``vec{N}``-suffixed entry per design, shared by every lane count."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    faults = list(generate_stuck_at_faults(counter_design))
    VectorCodegenEngine(counter_design, faults=faults[:2])
    VectorCodegenEngine(counter_design, faults=faults[:7])
    engine = VectorCodegenEngine(counter_design)
    # unlike the per-geometry packed keys, every width hits the same entry
    assert len(list(tmp_path.glob("*.py"))) == 1
    assert engine.cache_hit
    fingerprint = design_fingerprint(counter_design)
    assert list(tmp_path.glob("*.py"))[0].name.startswith(
        f"{fingerprint}-vec{VECTOR_VERSION}"
    )


def test_vector_generated_source_is_deterministic(counter_design):
    assert generate_vector_source(counter_design) == generate_vector_source(
        counter_design
    )


def test_vector_rejects_wide_memory_words():
    design = compile_design(
        """
        module widemem(
          input clk,
          input [1:0] raddr,
          output wire [64:0] q
        );
          reg [64:0] store [0:3];
          assign q = store[raddr];
          always @(posedge clk) store[0] <= q + 1;
        endmodule
        """,
        top="widemem",
    )
    with pytest.raises(SimulationError, match="> 64"):
        generate_vector_source(design)


# ------------------------------------------------------------------- sharding
def test_run_sharded_with_vector_factory():
    design, stimulus, faults, serial, _ = _workload("alu")
    sharded = run_sharded(
        design,
        stimulus,
        faults,
        workers=2,
        simulator_factory=make_vector_factory(width=4),
        word_size=4,
    )
    assert sharded.coverage.same_verdicts(serial.coverage)


def test_multiprocess_vector_runner_inline():
    """The ("vector", ...) runner spec wires up through run_multiprocess
    (single-worker short-circuit: same code path, no pool startup cost)."""
    from repro.sim.parallel import run_multiprocess

    design, stimulus, faults, serial, _ = _workload("alu")
    result = run_multiprocess(
        design,
        stimulus,
        faults,
        workers=1,
        runner=("vector", {"width": 4}),
    )
    assert result.simulator == "VectorPPSFP-MP"
    assert result.coverage.detections == serial.coverage.detections
