"""Small Verilog fixture designs exercising every supported construct.

This lives in its own uniquely-named module (not ``conftest.py``) so test
modules can ``import`` the sources without colliding with the *other*
``conftest.py`` in ``benchmarks/`` when pytest runs from the repository root.
"""

COUNTER_SRC = """
module counter(
  input clk,
  input rst,
  input en,
  input load,
  input [3:0] din,
  output reg [3:0] count,
  output wire carry
);
  wire [3:0] next_value;
  assign next_value = count + 1;
  assign carry = (count == 4'hF) & en;
  always @(posedge clk) begin
    if (rst) count <= 0;
    else if (load) count <= din;
    else if (en) count <= next_value;
  end
endmodule
"""

MUX_PIPELINE_SRC = """
module mux_pipeline(
  input clk,
  input rst,
  input sel,
  input [7:0] a,
  input [7:0] b,
  input [7:0] c,
  output reg [7:0] q,
  output wire [7:0] comb_out
);
  reg [7:0] stage;
  assign comb_out = stage ^ c;
  always @(*) begin
    if (sel) stage = a + b;
    else stage = a - b;
  end
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= stage;
  end
endmodule
"""

MEMORY_SRC = """
module scratchpad(
  input clk,
  input rst,
  input we,
  input [2:0] waddr,
  input [2:0] raddr,
  input [7:0] wdata,
  output reg [7:0] rdata,
  output wire [7:0] peek0
);
  reg [7:0] mem [0:7];
  assign peek0 = mem[0];
  always @(posedge clk) begin
    if (rst) rdata <= 0;
    else begin
      if (we) mem[waddr] <= wdata;
      rdata <= mem[raddr];
    end
  end
endmodule
"""

HIERARCHY_SRC = """
module adder #(parameter WIDTH = 4) (
  input [WIDTH-1:0] x,
  input [WIDTH-1:0] y,
  output wire [WIDTH-1:0] s
);
  assign s = x + y;
endmodule

module wrapper(
  input clk,
  input rst,
  input [7:0] a,
  input [7:0] b,
  output reg [7:0] total
);
  wire [7:0] partial;
  adder #(.WIDTH(8)) u_add (.x(a), .y(b), .s(partial));
  always @(posedge clk) begin
    if (rst) total <= 0;
    else total <= partial;
  end
endmodule
"""

CASE_FSM_SRC = """
module fsm(
  input clk,
  input rst,
  input go,
  input stop,
  output reg [1:0] state,
  output reg active
);
  localparam IDLE = 2'd0;
  localparam RUN  = 2'd1;
  localparam HALT = 2'd2;
  always @(posedge clk) begin
    if (rst) begin
      state <= IDLE;
      active <= 0;
    end
    else begin
      case (state)
        IDLE: begin
          if (go) state <= RUN;
          active <= 0;
        end
        RUN: begin
          active <= 1;
          if (stop) state <= HALT;
        end
        HALT: state <= IDLE;
        default: state <= IDLE;
      endcase
    end
  end
endmodule
"""
