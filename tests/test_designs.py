"""Tests for the benchmark designs, stimuli and registry."""

import pytest

from repro.designs.registry import BENCHMARK_NAMES, get_benchmark, load_benchmark
from repro.designs.stimuli import mips_asm, rv32i
from repro.errors import HarnessError
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import EventDrivenEngine


def test_registry_lists_all_ten_benchmarks():
    assert len(BENCHMARK_NAMES) == 10
    assert set(BENCHMARK_NAMES) == {
        "alu", "fpu", "sha256_hv", "apb", "sodor",
        "riscv_mini", "picorv32", "conv_acc", "sha256_c2v", "mips",
    }


def test_unknown_benchmark_raises():
    with pytest.raises(HarnessError):
        get_benchmark("nonexistent")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_compiles_and_finalizes(name):
    spec = get_benchmark(name)
    design = spec.compile()
    assert design.is_finalized
    assert design.rtl_nodes
    assert design.behavioral_nodes
    assert design.inputs and design.outputs


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_stimulus_is_valid_and_deterministic(name):
    design, stim = load_benchmark(name, cycles=30)
    stim.validate(design)
    design2, stim2 = load_benchmark(name, cycles=30)
    assert [stim.vector(i) for i in range(30)] == [stim2.vector(i) for i in range(30)]


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_registry_round_trip(name):
    """Corpus/stimulus drift guard: every registry entry must compile,
    elaborate and validate its default-parameter stimulus against the design.
    """
    spec = get_benchmark(name)
    design = spec.compile()
    assert design.is_finalized
    assert design.name == spec.top
    stim = spec.stimulus()
    assert stim.num_cycles() == spec.default_cycles
    stim.validate(design)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_engine_traces_match_on_benchmark(name):
    """The event-driven and the compiled kernel must produce identical
    per-cycle output traces on the whole corpus (both are driven by the same
    CycleDriver; only the settling strategy differs)."""
    design, stim = load_benchmark(name, cycles=40)
    event = EventDrivenEngine(design).run(stim)
    compiled = CompiledEngine(design).run(stim)
    assert event.first_difference(compiled) is None


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_good_simulation_has_activity(name):
    design, stim = load_benchmark(name, cycles=60)
    trace = EventDrivenEngine(design).run(stim)
    assert len(trace) == 60
    # outputs must not be constant for the whole run (the design is alive)
    assert len(set(trace.cycles)) > 1


def test_sha256_variants_share_interface():
    hv = get_benchmark("sha256_hv").compile()
    c2v = get_benchmark("sha256_c2v").compile()
    assert {s.name for s in hv.inputs} == {s.name for s in c2v.inputs}


def test_sha256_c2v_is_rtl_node_dominated():
    hv = get_benchmark("sha256_hv").compile()
    c2v = get_benchmark("sha256_c2v").compile()
    hv_ratio = len(hv.rtl_nodes) / max(1, sum(n.statement_count for n in hv.behavioral_nodes))
    c2v_ratio = len(c2v.rtl_nodes) / max(1, sum(n.statement_count for n in c2v.behavioral_nodes))
    assert c2v_ratio > hv_ratio * 2


def test_cpu_cores_execute_programs():
    """The CPUs must actually retire instructions under their stimulus."""
    for name, retired_output in [("sodor", "retired"), ("riscv_mini", "retired"),
                                 ("picorv32", "retired"), ("mips", "retired")]:
        design, stim = load_benchmark(name, cycles=120)
        engine = EventDrivenEngine(design)
        engine.run(stim)
        assert engine.peek(retired_output) > 5, name
        assert engine.peek("trap") == 0, name


def test_rv32i_encoder_fields():
    word = rv32i.addi(10, 0, 42)
    assert word & 0x7F == 0x13
    assert (word >> 7) & 0x1F == 10
    assert (word >> 20) == 42
    word = rv32i.add(3, 1, 2)
    assert word & 0x7F == 0x33
    assert (word >> 25) == 0
    assert (rv32i.sub(3, 1, 2) >> 25) == 0b0100000


def test_rv32i_branch_encoding_roundtrip():
    # beq x1, x2, -8 : imm[12|10:5|4:1|11] split across the word
    word = rv32i.beq(1, 2, -8)
    imm12 = (word >> 31) & 1
    imm10_5 = (word >> 25) & 0x3F
    imm4_1 = (word >> 8) & 0xF
    imm11 = (word >> 7) & 1
    rebuilt = (imm12 << 12) | (imm11 << 11) | (imm10_5 << 5) | (imm4_1 << 1)
    # sign-extend 13-bit
    if rebuilt & 0x1000:
        rebuilt -= 0x2000
    assert rebuilt == -8


def test_mips_encoder_fields():
    word = mips_asm.addiu(2, 0, 100)
    assert (word >> 26) == 0x09
    assert word & 0xFFFF == 100
    word = mips_asm.addu(3, 1, 2)
    assert (word >> 26) == 0 and (word & 0x3F) == 0x21
    assert (mips_asm.j(5) >> 26) == 0x02


def test_programs_fit_instruction_memory():
    assert len(rv32i.default_test_program()) <= 256
    assert len(mips_asm.default_test_program()) <= 256


def test_spec_metadata():
    spec = get_benchmark("alu")
    assert spec.paper_name == "ALU (64)"
    assert spec.default_cycles > 0
    assert spec.description
    assert "module" in spec.read_source()
