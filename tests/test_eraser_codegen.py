"""Tests for the concurrent (Eraser) codegen kernel.

The strongest check is exactness: on every corpus benchmark the generated
concurrent kernel must produce the *identical* verdict AND detection cycle
for every fault the interpreted :class:`EraserSimulator` produces — the
concurrent representation (divergence dicts, holders, follow-the-good
commits) leaves plenty of room for plausible-but-wrong shortcuts, so nothing
short of full detection-dict equality is accepted.  The seam tests cover the
``ENGINES["eraser-codegen"]`` registration, the ``EraserSimulator(engine=)``
selector, the shared disk cache and the fault/force_hook exclusivity.
"""

import pytest

from repro.api import ENGINES, compile_design, make_engine, simulate_good
from repro.baselines.base import SerialFaultSimulator
from repro.core.framework import EraserMode, EraserSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.errors import SimulationError
from repro.fault.faultlist import FaultList, generate_stuck_at_faults, sample_faults
from repro.fault.model import StuckAtFault
from repro.sim.codegen import design_fingerprint
from repro.sim.engine import EventDrivenEngine
from repro.sim.eraser_codegen import (
    EraserCodegenEngine,
    EraserCodegenSimulator,
    generate_eraser_source,
    load_eraser_kernel,
)
from repro.sim.stimulus import VectorStimulus

#: Cycles for the corpus exactness sweep (short: the fuzz suite goes longer).
SWEEP_CYCLES = 40
#: Fault sample per benchmark for the sweep.
SWEEP_FAULTS = 24


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


_workloads = {}


def _workload(name):
    """Compile each benchmark once per session (design, stimulus, faults)."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=SWEEP_CYCLES, seed=2025)
        faults = sample_faults(
            generate_stuck_at_faults(design), SWEEP_FAULTS, seed=2025
        )
        _workloads[name] = (design, stimulus, faults)
    return _workloads[name]


# ------------------------------------------------------------------ exactness
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_detection_exactness_on_corpus(name):
    """Verdict- and detection-cycle equality vs the interpreted Eraser."""
    design, stimulus, faults = _workload(name)
    interpreted = EraserSimulator(design).run(stimulus, faults)
    generated = EraserCodegenSimulator(design, use_cache=False).run(stimulus, faults)
    assert generated.coverage.detections == interpreted.coverage.detections, (
        f"{name}: eraser-codegen disagrees with the interpreted Eraser on "
        f"{generated.coverage.disagreements(interpreted.coverage)}"
    )


@pytest.mark.parametrize("name", ["counter", "scratchpad"])
def test_full_fault_list_exactness(name, counter_design, memory_design,
                                   counter_stimulus, memory_stimulus):
    """Every fault of a small design, not a sample (memories included)."""
    design, stimulus = {
        "counter": (counter_design, counter_stimulus),
        "scratchpad": (memory_design, memory_stimulus),
    }[name]
    faults = generate_stuck_at_faults(design)
    interpreted = EraserSimulator(design).run(stimulus, faults)
    generated = EraserCodegenSimulator(design).run(stimulus, faults)
    assert generated.coverage.detections == interpreted.coverage.detections


def test_clock_site_faults_hold_state(counter_design, counter_stimulus):
    """Faults on the clock itself (never-edging machines) match exactly."""
    clk = counter_design.signal("clk")
    faults = FaultList([StuckAtFault(clk, 0, 0), StuckAtFault(clk, 0, 1)])
    interpreted = EraserSimulator(counter_design).run(counter_stimulus, faults)
    generated = EraserCodegenSimulator(counter_design).run(counter_stimulus, faults)
    assert generated.coverage.detections == interpreted.coverage.detections


# ----------------------------------------------------------------- good seam
def test_registered_in_engines():
    assert "eraser-codegen" in ENGINES


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_good_machine_trace_parity(name):
    """As a plain good-machine kernel the trace matches the event engine."""
    design, stimulus, _ = _workload(name)
    reference = EventDrivenEngine(design).run(stimulus)
    trace = simulate_good(design, stimulus, engine="eraser-codegen")
    assert trace == reference


def test_serial_baseline_seam(counter_design, counter_stimulus):
    """SerialFaultSimulator(engine="eraser-codegen") = force_hook contract."""
    faults = sample_faults(generate_stuck_at_faults(counter_design), 12, seed=3)
    reference = SerialFaultSimulator(counter_design, engine="event").run(
        counter_stimulus, faults
    )
    result = SerialFaultSimulator(counter_design, engine="eraser-codegen").run(
        counter_stimulus, faults
    )
    assert result.coverage.detections == reference.coverage.detections


def test_peeks_and_store(counter_design, counter_stimulus):
    engine = make_engine(counter_design, "eraser-codegen")
    engine.run(counter_stimulus)
    assert engine.peek("count") == engine.store.get(counter_design.signal("count"))
    with pytest.raises(SimulationError, match="memory"):
        engine.peek_word("count", 0)


# ------------------------------------------------------------ engine selector
def test_eraser_simulator_engine_selector(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    interpreted = EraserSimulator(counter_design, engine="interp").run(
        counter_stimulus, faults
    )
    generated = EraserSimulator(counter_design, engine="codegen").run(
        counter_stimulus, faults
    )
    assert generated.coverage.detections == interpreted.coverage.detections
    # the simulator name survives the delegation (fig6/fig7 rows key on it)
    assert generated.simulator == interpreted.simulator == "Eraser"


@pytest.mark.parametrize("mode", list(EraserMode))
def test_engine_selector_mode_agnostic(mode, counter_design, counter_stimulus):
    """All three ablation modes coincide on the generated kernel."""
    faults = generate_stuck_at_faults(counter_design)
    interpreted = EraserSimulator(counter_design, mode=mode).run(
        counter_stimulus, faults
    )
    generated = EraserSimulator(counter_design, mode=mode, engine="codegen").run(
        counter_stimulus, faults
    )
    assert generated.coverage.detections == interpreted.coverage.detections
    assert generated.simulator == interpreted.simulator


def test_unknown_eraser_engine_rejected(counter_design):
    with pytest.raises(ValueError, match="interp"):
        EraserSimulator(counter_design, engine="jit")


def test_faults_and_force_hook_exclusive(counter_design):
    fault = generate_stuck_at_faults(counter_design)[0]
    with pytest.raises(SimulationError, match="not both"):
        EraserCodegenEngine(
            counter_design,
            force_hook=lambda s, v: v,
            faults=[fault],
        )


# ----------------------------------------------------------------- disk cache
def test_cache_round_trip(counter_design, counter_stimulus, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "eraser-cache"))
    faults = generate_stuck_at_faults(counter_design)
    first = EraserCodegenSimulator(counter_design)
    r1 = first.run(counter_stimulus, faults)
    assert first.engine.cache_hit is False
    second = EraserCodegenSimulator(counter_design)
    r2 = second.run(counter_stimulus, faults)
    assert second.engine.cache_hit is True
    assert second.engine.source == first.engine.source
    assert r2.coverage.detections == r1.coverage.detections


def test_cache_key_distinct_from_serial(counter_design):
    """Eraser sources never collide with the serial/packed cache entries."""
    _, source, fingerprint, _ = load_eraser_kernel(counter_design, use_cache=False)
    assert fingerprint == design_fingerprint(counter_design)
    assert "comb_pass" in source and "_apply_outcomes" in source


def test_corrupt_cache_regenerates(counter_design, tmp_path, monkeypatch):
    cache = tmp_path / "eraser-cache"
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(cache))
    EraserCodegenEngine(counter_design)
    [entry] = [p for p in cache.iterdir() if p.suffix == ".py"]
    entry.write_text("this is not python $$$", encoding="utf-8")
    engine = EraserCodegenEngine(counter_design)
    assert engine.cache_hit is False
    assert "comb_pass" in engine.source


def test_generated_source_is_deterministic(counter_design):
    assert generate_eraser_source(counter_design) == generate_eraser_source(
        counter_design
    )


# ------------------------------------------- event-scheduler ordering hazards
#: A comb always block feeding an RTL assign: the assign's inputs are
#: committed AFTER the assign evaluates within the same pass, so the change
#: guard must re-fire it on the next pass — with pass-granular version
#: stamps this silently produced stale (wrong) outputs on quiescent cycles.
COMB_FEEDS_ASSIGN_SRC = """
module combfeed(input clk, input [3:0] a, output [3:0] out);
  reg [3:0] y;
  always @(*) y = ~a;
  assign out = y ^ 4'd3;
endmodule
"""

#: A combinational loop the levelizer must break: the lower-level node reads
#: a higher-level node's output, so a commit lands after its reader ran.
BROKEN_LOOP_SRC = """
module latchloop(input en, input [3:0] x, output [3:0] q);
  wire [3:0] a;
  wire [3:0] b;
  assign a = en ? x : b;
  assign b = a;
  assign q = b;
endmodule
"""


def test_comb_always_feeding_rtl_assign():
    """Same-pass late commits re-fire earlier nodes (trace + verdicts)."""
    design = compile_design(COMB_FEEDS_ASSIGN_SRC, top="combfeed")
    # held inputs make the quiescent cycles where stale values would hide
    stimulus = VectorStimulus(
        [{"a": 5}, {"a": 5}, {"a": 9}, {"a": 9}, {"a": 0}, {"a": 0}],
        clock="clk",
    )
    reference = EventDrivenEngine(design).run(stimulus)
    trace = simulate_good(design, stimulus, engine="eraser-codegen")
    assert trace == reference
    faults = generate_stuck_at_faults(design)
    interpreted = EraserSimulator(design).run(stimulus, faults)
    generated = EraserCodegenSimulator(design).run(stimulus, faults)
    assert generated.coverage.detections == interpreted.coverage.detections


def test_broken_combinational_loop():
    design = compile_design(BROKEN_LOOP_SRC, top="latchloop")
    stimulus = VectorStimulus(
        [
            {"en": 1, "x": 7},
            {"en": 0, "x": 2},
            {"en": 0, "x": 9},
            {"en": 1, "x": 4},
            {"en": 0, "x": 1},
        ]
    )
    reference = EventDrivenEngine(design).run(stimulus)
    trace = simulate_good(design, stimulus, engine="eraser-codegen")
    assert trace == reference
    faults = generate_stuck_at_faults(design)
    interpreted = EraserSimulator(design).run(stimulus, faults)
    generated = EraserCodegenSimulator(design).run(stimulus, faults)
    assert generated.coverage.detections == interpreted.coverage.detections
