"""Tests for the event-driven and compiled good-simulation kernels."""

from hypothesis import given, settings, strategies as st

from repro.api import compile_design
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import EventDrivenEngine
from repro.sim.stimulus import RandomStimulus, VectorStimulus
from fixture_designs import COUNTER_SRC, MUX_PIPELINE_SRC


def run_counter(engine_cls, vectors):
    design = compile_design(COUNTER_SRC, top="counter")
    engine = engine_cls(design)
    return design, engine, engine.run(VectorStimulus(vectors, clock="clk"))


BASE = {"rst": 0, "en": 1, "load": 0, "din": 0}


def test_counter_counts(counter_design):
    vectors = [dict(BASE, rst=1)] + [dict(BASE) for _ in range(5)]
    engine = EventDrivenEngine(counter_design)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    counts = [cycle[trace.output_names.index("count")] for cycle in trace.cycles]
    assert counts == [0, 1, 2, 3, 4, 5]


def test_counter_load_and_hold(counter_design):
    vectors = [
        dict(BASE, rst=1),
        dict(BASE, load=1, din=9),
        dict(BASE, en=0),
        dict(BASE),
    ]
    engine = EventDrivenEngine(counter_design)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    counts = [cycle[0] for cycle in trace.cycles]
    assert counts == [0, 9, 9, 10]


def test_counter_carry_output(counter_design):
    vectors = [dict(BASE, rst=1), dict(BASE, load=1, din=15), dict(BASE)]
    engine = EventDrivenEngine(counter_design)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    carry_idx = trace.output_names.index("carry")
    assert trace.cycles[1][carry_idx] == 1  # count==15 and en


def test_reset_is_synchronous(counter_design):
    vectors = [dict(BASE, rst=1), dict(BASE), dict(BASE, rst=1), dict(BASE)]
    engine = EventDrivenEngine(counter_design)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    counts = [cycle[0] for cycle in trace.cycles]
    assert counts == [0, 1, 0, 1]


def test_peek_and_poke(counter_design):
    engine = EventDrivenEngine(counter_design)
    engine.initialize()
    engine.poke("count", 14)
    engine.poke("en", 1)
    assert engine.peek("count") == 14
    assert engine.peek("next_value") == 15
    assert engine.peek("carry") == 0
    engine.poke("count", 15)
    assert engine.peek("carry") == 1


def test_comb_always_block_publishes(mux_design, mux_stimulus):
    engine = EventDrivenEngine(mux_design)
    trace = engine.run(mux_stimulus)
    comb_idx = trace.output_names.index("comb_out")
    # comb_out = stage ^ c must follow the registered stage value
    assert any(cycle[comb_idx] != 0 for cycle in trace.cycles)


def test_memory_engine_behavior(memory_design):
    vectors = [
        {"rst": 1, "we": 0, "waddr": 0, "raddr": 0, "wdata": 0},
        {"rst": 0, "we": 1, "waddr": 3, "raddr": 0, "wdata": 0x5A},
        {"rst": 0, "we": 0, "waddr": 0, "raddr": 3, "wdata": 0},
        {"rst": 0, "we": 0, "waddr": 0, "raddr": 3, "wdata": 0},
    ]
    engine = EventDrivenEngine(memory_design)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    rdata_idx = trace.output_names.index("rdata")
    assert trace.cycles[3][rdata_idx] == 0x5A
    assert engine.peek_word("mem", 3) == 0x5A


def test_hierarchy_engine(hierarchy_design):
    vectors = [
        {"rst": 1, "a": 0, "b": 0},
        {"rst": 0, "a": 3, "b": 4},
        {"rst": 0, "a": 250, "b": 10},
    ]
    engine = EventDrivenEngine(hierarchy_design)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    totals = [cycle[0] for cycle in trace.cycles]
    assert totals == [0, 7, (250 + 10) & 0xFF]


def test_force_hook_applied(counter_design):
    # stuck-at-1 on bit 0 of count
    count = counter_design.signal("count")

    def hook(signal, value):
        return value | 1 if signal is count else value

    vectors = [dict(BASE, rst=1)] + [dict(BASE) for _ in range(3)]
    engine = EventDrivenEngine(counter_design, force_hook=hook)
    trace = engine.run(VectorStimulus(vectors, clock="clk"))
    counts = [cycle[0] for cycle in trace.cycles]
    assert all(c & 1 for c in counts)


def test_compiled_engine_matches_event_driven_on_counter(counter_design, counter_stimulus):
    event = EventDrivenEngine(counter_design).run(counter_stimulus)
    compiled = CompiledEngine(counter_design).run(counter_stimulus)
    assert event == compiled


def test_compiled_engine_matches_on_memory(memory_design, memory_stimulus):
    assert (
        EventDrivenEngine(memory_design).run(memory_stimulus)
        == CompiledEngine(memory_design).run(memory_stimulus)
    )


def test_compiled_engine_matches_on_mux(mux_design, mux_stimulus):
    assert (
        EventDrivenEngine(mux_design).run(mux_stimulus)
        == CompiledEngine(mux_design).run(mux_stimulus)
    )


def test_trace_first_difference(counter_design):
    vectors = [dict(BASE, rst=1)] + [dict(BASE) for _ in range(4)]
    stim = VectorStimulus(vectors, clock="clk")
    a = EventDrivenEngine(counter_design).run(stim)
    b = EventDrivenEngine(counter_design).run(stim)
    assert a.first_difference(b) is None
    b.cycles[2] = (99, 0)
    assert a.first_difference(b) == 2


def test_trace_length_difference(counter_design):
    vectors = [dict(BASE, rst=1), dict(BASE)]
    a = EventDrivenEngine(counter_design).run(VectorStimulus(vectors, clock="clk"))
    b = EventDrivenEngine(counter_design).run(VectorStimulus(vectors[:1], clock="clk"))
    assert a.first_difference(b) == 1


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_engines_equivalent_on_random_stimuli(seed):
    design = compile_design(MUX_PIPELINE_SRC, top="mux_pipeline")
    stim = RandomStimulus(
        {"sel": 1, "a": 8, "b": 8, "c": 8},
        cycles=15,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 1 else 0),
        seed=seed,
    )
    assert EventDrivenEngine(design).run(stim) == CompiledEngine(design).run(stim)
