"""Cross-engine differential fuzz suite.

Every simulation engine in the package claims the same semantics; this suite
is the claim's enforcement.  For each corpus benchmark a *randomized* stimulus
(the registry stimulus builders are seeded random-vector generators) drives
the identical sampled fault list through all seven engines —

* ``event`` / ``compiled`` / ``codegen`` — serial per-fault re-simulation on
  the three single-machine kernels,
* ``packed``  — the bit-parallel PPSFP campaign,
* ``packed-numpy`` — the vectorized (NumPy array lane) PPSFP campaign
  (skipped transparently when NumPy is not installed),
* ``eraser``  — the interpreted concurrent framework,
* ``eraser-codegen`` — the generated concurrent kernel —

and asserts that the *detection dictionaries* (which fault was detected AND
at which cycle) are identical across all of them.  Tier-1 runs two fixed
seeds; the nightly CI leg re-runs the suite with a fresh ``--fuzz-seed``, so
the randomized surface keeps growing without making the tree flaky.

Since the emitter-core refactor the suite is also the *pass-toggle
differential harness*: the same ten-benchmark sweep re-runs the generated
engines (serial codegen / packed / vector) under every interesting
:class:`~repro.sim.emitter.EmitterPasses` configuration — event scheduler
on/off, ``comb_once`` on/off, const pooling on/off, everything off — and
under ``engine="auto"``, so a miscompiled pass shows up as a verdict or
detection-cycle diff, never as a silent perf blip.
"""

import pytest

from repro.baselines.base import SerialFaultSimulator
from repro.core.framework import EraserSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.sim.codegen import CodegenEngine
from repro.sim.emitter import EmitterPasses
from repro.sim.eraser_codegen import EraserCodegenSimulator
from repro.sim.packed import PackedCodegenSimulator
from repro.sim.vector import VectorFaultSimulator
from repro.sim.vector import np as _vector_np

#: The fixed tier-1 seeds (``--fuzz-seed N`` replaces them with ``[N]``).
FIXED_SEEDS = (2025, 90125)

#: Stimulus length per benchmark: long enough for output activity everywhere,
#: short enough that the serial event-driven sweep stays test-suite friendly.
FUZZ_CYCLES = {
    "alu": 40,
    "fpu": 40,
    "sha256_hv": 60,
    "apb": 50,
    "sodor": 50,
    "riscv_mini": 50,
    "picorv32": 60,
    "conv_acc": 50,
    "sha256_c2v": 60,
    "mips": 50,
}

#: Faults sampled per benchmark and seed.
FUZZ_FAULTS = 16


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


def _seeds(request):
    override = request.config.getoption("--fuzz-seed")
    return [override] if override is not None else list(FIXED_SEEDS)


_designs = {}


def _design(name):
    """Compile each benchmark once per session (stimuli vary per seed)."""
    if name not in _designs:
        _designs[name] = get_benchmark(name).compile()
    return _designs[name]


def _engines(design):
    """The seven-engine matrix, name -> run(stimulus, faults) callable."""
    engines = {
        "event": SerialFaultSimulator(design, engine="event").run,
        "compiled": SerialFaultSimulator(design, engine="compiled").run,
        "codegen": SerialFaultSimulator(design, engine="codegen").run,
        "packed": PackedCodegenSimulator(design, width=8).run,
        "eraser": EraserSimulator(design).run,
        "eraser-codegen": EraserCodegenSimulator(design).run,
    }
    if _vector_np is not None:  # NumPy is the optional "vector" extra
        engines["packed-numpy"] = VectorFaultSimulator(design, width=8).run
    return engines


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fuzz_parity(name, request):
    design = _design(name)
    spec = get_benchmark(name)
    for seed in _seeds(request):
        stimulus = spec.stimulus(cycles=FUZZ_CYCLES[name], seed=seed)
        faults = sample_faults(
            generate_stuck_at_faults(design), FUZZ_FAULTS, seed=seed
        )
        results = {
            engine: run(stimulus, faults)
            for engine, run in _engines(design).items()
        }
        reference = results["event"].coverage.detections
        for engine, result in results.items():
            detections = result.coverage.detections
            assert detections == reference, (
                f"{name} (seed {seed}): {engine} disagrees with the serial "
                f"event-driven reference — "
                f"{ {k: (reference.get(k), detections.get(k)) for k in set(reference) | set(detections) if reference.get(k) != detections.get(k)} }"
            )


def test_fuzz_seed_option_registered(request):
    """The --fuzz-seed plumbing exists (the nightly leg depends on it)."""
    assert request.config.getoption("--fuzz-seed") in (None,) or isinstance(
        request.config.getoption("--fuzz-seed"), int
    )


# --------------------------------------------------------------------------
# Pass-toggle differential harness
# --------------------------------------------------------------------------

#: Emitter-pass configurations under differential test.  The default config
#: (everything on) is already covered by ``test_fuzz_parity`` above; these are
#: the single-pass ablations plus the everything-off floor.
PASS_CONFIGS = {
    "no-scheduler": EmitterPasses(event_scheduler=False),
    "no-comb-once": EmitterPasses(comb_once=False),
    "no-const-pool": EmitterPasses(const_pool=False),
    "all-off": EmitterPasses(
        event_scheduler=False, comb_once=False, const_pool=False
    ),
}

#: Event-driven reference detections, memoized per (benchmark, seed) so the
#: expensive interpreted runs happen once per pair across every pass config.
_references = {}


def _workload(name, seed):
    spec = get_benchmark(name)
    design = _design(name)
    stimulus = spec.stimulus(cycles=FUZZ_CYCLES[name], seed=seed)
    faults = sample_faults(generate_stuck_at_faults(design), FUZZ_FAULTS, seed=seed)
    return design, stimulus, faults


def _reference(name, seed):
    if (name, seed) not in _references:
        design, stimulus, faults = _workload(name, seed)
        result = SerialFaultSimulator(design, engine="event").run(stimulus, faults)
        _references[(name, seed)] = result.coverage.detections
    return _references[(name, seed)]


class _PassSerial(SerialFaultSimulator):
    """Serial baseline pinned to a codegen kernel with explicit passes."""

    name = "codegen-passes"

    def __init__(self, design, passes, **kwargs):
        super().__init__(design, **kwargs)
        self._passes = passes

    def _default_engine(self, force_hook=None):
        return CodegenEngine(self.design, force_hook=force_hook, passes=self._passes)


def _pass_engines(design, passes):
    """Generated-engine matrix under one pass config, name -> run callable."""
    engines = {
        "codegen": _PassSerial(design, passes).run,
        "packed": PackedCodegenSimulator(design, width=8, passes=passes).run,
    }
    if _vector_np is not None:
        engines["packed-numpy"] = VectorFaultSimulator(
            design, width=8, passes=passes
        ).run
    return engines


@pytest.mark.parametrize("config", sorted(PASS_CONFIGS))
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fuzz_pass_toggle_parity(name, config, request):
    """Every pass-ablated kernel matches the event-driven reference exactly."""
    design = _design(name)
    passes = PASS_CONFIGS[config]
    for seed in _seeds(request):
        _, stimulus, faults = _workload(name, seed)
        reference = _reference(name, seed)
        for engine, run in _pass_engines(design, passes).items():
            detections = run(stimulus, faults).coverage.detections
            assert detections == reference, (
                f"{name} (seed {seed}, passes {config}): {engine} disagrees "
                f"with the serial event-driven reference — "
                f"{ {k: (reference.get(k), detections.get(k)) for k in set(reference) | set(detections) if reference.get(k) != detections.get(k)} }"
            )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fuzz_auto_engine_parity(name, request):
    """``engine="auto"`` is verdict- and cycle-exact at both policy seams.

    The serial seam (``SerialFaultSimulator(engine="auto")``) resolves to a
    single-machine kernel; the campaign seam
    (``ExperimentWorkload.run_faults``) resolves the lane substrate and turns
    on survivor re-packing, so this also exercises
    :meth:`~repro.sim.packed.PackedCodegenEngine.compact` mid-campaign.
    """
    from repro.harness.experiments import ExperimentWorkload

    design = _design(name)
    for seed in _seeds(request):
        _, stimulus, faults = _workload(name, seed)
        reference = _reference(name, seed)
        serial = SerialFaultSimulator(design, engine="auto").run(stimulus, faults)
        assert serial.coverage.detections == reference, (
            f"{name} (seed {seed}): serial engine='auto' disagrees with the "
            f"event-driven reference"
        )
        workload = ExperimentWorkload(
            name=name,
            paper_name=name,
            design=design,
            stimulus=stimulus,
            faults=faults,
            total_fault_population=len(faults),
            engine="auto",
        )
        campaign = workload.run_faults(width=8)
        assert campaign.coverage.detections == reference, (
            f"{name} (seed {seed}): campaign engine='auto' disagrees with "
            f"the event-driven reference"
        )
