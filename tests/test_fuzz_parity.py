"""Cross-engine differential fuzz suite.

Every simulation engine in the package claims the same semantics; this suite
is the claim's enforcement.  For each corpus benchmark a *randomized* stimulus
(the registry stimulus builders are seeded random-vector generators) drives
the identical sampled fault list through all seven engines —

* ``event`` / ``compiled`` / ``codegen`` — serial per-fault re-simulation on
  the three single-machine kernels,
* ``packed``  — the bit-parallel PPSFP campaign,
* ``packed-numpy`` — the vectorized (NumPy array lane) PPSFP campaign
  (skipped transparently when NumPy is not installed),
* ``eraser``  — the interpreted concurrent framework,
* ``eraser-codegen`` — the generated concurrent kernel —

and asserts that the *detection dictionaries* (which fault was detected AND
at which cycle) are identical across all of them.  Tier-1 runs two fixed
seeds; the nightly CI leg re-runs the suite with a fresh ``--fuzz-seed``, so
the randomized surface keeps growing without making the tree flaky.
"""

import pytest

from repro.baselines.base import SerialFaultSimulator
from repro.core.framework import EraserSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.sim.eraser_codegen import EraserCodegenSimulator
from repro.sim.packed import PackedCodegenSimulator
from repro.sim.vector import VectorFaultSimulator
from repro.sim.vector import np as _vector_np

#: The fixed tier-1 seeds (``--fuzz-seed N`` replaces them with ``[N]``).
FIXED_SEEDS = (2025, 90125)

#: Stimulus length per benchmark: long enough for output activity everywhere,
#: short enough that the serial event-driven sweep stays test-suite friendly.
FUZZ_CYCLES = {
    "alu": 40,
    "fpu": 40,
    "sha256_hv": 60,
    "apb": 50,
    "sodor": 50,
    "riscv_mini": 50,
    "picorv32": 60,
    "conv_acc": 50,
    "sha256_c2v": 60,
    "mips": 50,
}

#: Faults sampled per benchmark and seed.
FUZZ_FAULTS = 16


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


def _seeds(request):
    override = request.config.getoption("--fuzz-seed")
    return [override] if override is not None else list(FIXED_SEEDS)


_designs = {}


def _design(name):
    """Compile each benchmark once per session (stimuli vary per seed)."""
    if name not in _designs:
        _designs[name] = get_benchmark(name).compile()
    return _designs[name]


def _engines(design):
    """The seven-engine matrix, name -> run(stimulus, faults) callable."""
    engines = {
        "event": SerialFaultSimulator(design, engine="event").run,
        "compiled": SerialFaultSimulator(design, engine="compiled").run,
        "codegen": SerialFaultSimulator(design, engine="codegen").run,
        "packed": PackedCodegenSimulator(design, width=8).run,
        "eraser": EraserSimulator(design).run,
        "eraser-codegen": EraserCodegenSimulator(design).run,
    }
    if _vector_np is not None:  # NumPy is the optional "vector" extra
        engines["packed-numpy"] = VectorFaultSimulator(design, width=8).run
    return engines


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fuzz_parity(name, request):
    design = _design(name)
    spec = get_benchmark(name)
    for seed in _seeds(request):
        stimulus = spec.stimulus(cycles=FUZZ_CYCLES[name], seed=seed)
        faults = sample_faults(
            generate_stuck_at_faults(design), FUZZ_FAULTS, seed=seed
        )
        results = {
            engine: run(stimulus, faults)
            for engine, run in _engines(design).items()
        }
        reference = results["event"].coverage.detections
        for engine, result in results.items():
            detections = result.coverage.detections
            assert detections == reference, (
                f"{name} (seed {seed}): {engine} disagrees with the serial "
                f"event-driven reference — "
                f"{ {k: (reference.get(k), detections.get(k)) for k in set(reference) | set(detections) if reference.get(k) != detections.get(k)} }"
            )


def test_fuzz_seed_option_registered(request):
    """The --fuzz-seed plumbing exists (the nightly leg depends on it)."""
    assert request.config.getoption("--fuzz-seed") in (None,) or isinstance(
        request.config.getoption("--fuzz-seed"), int
    )
