"""Table-driven tests for the ``engine="auto"`` selection policy.

:func:`repro.sim.emitter.choose_engine` is a pure function of
``(fault count, activity, stride, numpy availability)``; this module pins the
documented decision table row by row, the structural activity proxy, the
design-level :func:`~repro.sim.emitter.resolve_engine` envelope (wide-memory
NumPy downgrade), and the end-to-end exactness of ``engine="auto"`` including
the mid-campaign survivor re-pack it enables.
"""

import pytest

from fixture_designs import COUNTER_SRC
from repro.api import compile_design, make_engine, simulate_good
from repro.errors import SimulationError
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.sim.emitter import (
    AUTO_LOW_ACTIVITY,
    AUTO_PACKED_MIN_FAULTS,
    AUTO_VECTOR_MIN_FAULTS,
    AUTO_WIDE_STRIDE,
    choose_engine,
    estimate_activity,
    resolve_engine,
    vector_capable,
)
from repro.sim.packed import PackedCodegenEngine, PackedCodegenSimulator
from repro.sim.stimulus import RandomStimulus

#: A design outside the vector layout's envelope: memory words wider than the
#: 64-bit NumPy lane planes support.
WIDE_MEMORY_SRC = """
module widemem(
  input clk,
  input rst,
  input we,
  input [1:0] addr,
  input [127:0] wdata,
  output reg [127:0] rdata
);
  reg [127:0] mem [0:3];
  always @(posedge clk) begin
    if (rst) rdata <= 0;
    else begin
      if (we) mem[addr] <= wdata;
      rdata <= mem[addr];
    end
  end
endmodule
"""


# -------------------------------------------------------------- decision table
@pytest.mark.parametrize(
    "fault_count, activity, stride, numpy, expected",
    [
        # single-machine runs: interpretation only pays off on idle designs
        (0, 0.01, None, False, "event"),
        (1, AUTO_LOW_ACTIVITY / 2, None, True, "event"),
        (1, 0.5, None, False, "codegen"),
        (1, AUTO_LOW_ACTIVITY, None, False, "codegen"),  # boundary: >= is busy
        # a handful of faults: serial codegen re-runs beat near-empty words
        (2, 0.01, None, True, "codegen"),
        (AUTO_PACKED_MIN_FAULTS - 1, 0.9, 512, True, "codegen"),
        # the packed word is the workhorse of the mid range
        (AUTO_PACKED_MIN_FAULTS, 0.5, 33, False, "packed"),
        (AUTO_VECTOR_MIN_FAULTS - 1, 0.5, 33, True, "packed"),
        # big campaigns go to NumPy lane columns — if NumPy exists
        (AUTO_VECTOR_MIN_FAULTS, 0.5, 33, True, "packed-numpy"),
        (AUTO_VECTOR_MIN_FAULTS, 0.5, 33, False, "packed"),
        # wide strides tip the balance to the vector layout earlier
        (64, 0.5, AUTO_WIDE_STRIDE + 1, True, "packed-numpy"),
        (64, 0.5, AUTO_WIDE_STRIDE, True, "packed"),
        (63, 0.5, 512, True, "packed"),
        (64, 0.5, 512, False, "packed"),
        # unknown stride is treated as narrow
        (64, 0.5, None, True, "packed"),
    ],
)
def test_choose_engine_table(fault_count, activity, stride, numpy, expected):
    assert choose_engine(fault_count, activity, stride, numpy) == expected


def test_choose_engine_rejects_negative_fault_count():
    with pytest.raises(SimulationError, match="fault_count"):
        choose_engine(-1)


# ------------------------------------------------------------- activity proxy
def test_estimate_activity_bounds_and_monotonicity(counter_design, mux_design):
    for design in (counter_design, mux_design):
        activity = estimate_activity(design)
        assert 0.0 < activity <= 1.0


def test_estimate_activity_is_memoized(counter_design):
    first = estimate_activity(counter_design)
    assert counter_design.content_memo["activity_estimate"] == first
    # poison the memo: a second call must serve it, not recompute
    counter_design.content_memo["activity_estimate"] = 0.123
    assert estimate_activity(counter_design) == 0.123


def test_large_designs_estimate_idle():
    """A CPU-sized node count lands under the low-activity threshold."""

    class _FakeDesign:
        rtl_nodes = [None] * 500
        behavioral_nodes = [None] * 20
        content_memo = {}

    assert estimate_activity(_FakeDesign()) < AUTO_LOW_ACTIVITY


# ------------------------------------------------------------ design envelope
def test_resolve_engine_small_campaign(counter_design):
    assert resolve_engine(counter_design, fault_count=2, numpy_available=True) == (
        "codegen"
    )
    assert resolve_engine(counter_design, fault_count=16, numpy_available=False) == (
        "packed"
    )


def test_resolve_engine_numpy_downgrade_outside_vector_envelope(counter_design):
    wide = compile_design(WIDE_MEMORY_SRC, top="widemem")
    assert not vector_capable(wide)
    assert vector_capable(counter_design)
    # the raw table would say packed-numpy; the envelope forces packed
    assert (
        resolve_engine(wide, fault_count=AUTO_VECTOR_MIN_FAULTS, numpy_available=True)
        == "packed"
    )
    assert (
        resolve_engine(
            counter_design, fault_count=AUTO_VECTOR_MIN_FAULTS, numpy_available=True
        )
        == "packed-numpy"
    )


# --------------------------------------------------------------- end to end
def test_auto_engine_is_registered_and_exact(counter_design, counter_stimulus):
    """``make_engine(design, "auto")`` resolves and matches the event trace."""
    engine = make_engine(counter_design, "auto")
    assert engine is not None
    reference = simulate_good(counter_design, counter_stimulus, engine="event")
    assert simulate_good(counter_design, counter_stimulus, engine="auto") == reference


def test_repack_campaign_is_verdict_exact(counter_design, counter_stimulus):
    """Survivor re-packing changes wall-clock only, never a verdict."""
    faults = sample_faults(
        generate_stuck_at_faults(counter_design), 16, seed=2025
    )
    plain = PackedCodegenSimulator(counter_design, width=8).run(
        counter_stimulus, faults
    )
    repacked = PackedCodegenSimulator(counter_design, width=8, repack=True).run(
        counter_stimulus, faults
    )
    assert repacked.coverage.detections == plain.coverage.detections


def test_repack_fires_on_long_tails_and_stays_exact(counter_design, monkeypatch):
    """A long stimulus with early detections actually triggers ``compact``.

    The trigger demands three quarters of a word's lanes dead *and* enough
    remaining cycles to amortize the re-pack; a 200-cycle counter run with 16
    sampled faults satisfies both.  The re-pack must fire at least once and the
    verdicts must still match the non-repacking run exactly.
    """
    long_stimulus = RandomStimulus(
        {"en": 1, "load": 1, "din": 4},
        cycles=200,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=7,
    )
    faults = sample_faults(generate_stuck_at_faults(counter_design), 16, seed=2025)
    compacts = []
    original = PackedCodegenEngine.compact

    def counting(self, keep):
        compacts.append(len(keep))
        return original(self, keep)

    monkeypatch.setattr(PackedCodegenEngine, "compact", counting)
    repacked = PackedCodegenSimulator(counter_design, width=16, repack=True).run(
        long_stimulus, faults
    )
    plain = PackedCodegenSimulator(counter_design, width=16).run(long_stimulus, faults)
    assert compacts, "the long tail should have triggered at least one re-pack"
    assert all(kept >= 1 for kept in compacts)
    assert repacked.coverage.detections == plain.coverage.detections


def test_compact_requires_the_good_lane(counter_design):
    faults = sample_faults(generate_stuck_at_faults(counter_design), 4, seed=1)
    engine = PackedCodegenEngine(counter_design, faults=faults, use_cache=False)
    with pytest.raises(SimulationError, match="lane 0"):
        engine.compact([1, 2])


def test_compact_reindexes_surviving_faults(counter_design):
    faults = sample_faults(generate_stuck_at_faults(counter_design), 4, seed=1)
    engine = PackedCodegenEngine(counter_design, faults=faults, use_cache=False)
    before = engine.layout.lanes
    engine.compact([0, 2, 4])
    assert engine.layout.lanes == 2 + 1
    assert engine.layout.lanes < before
    assert [fault.fault_id for fault in engine.faults] == [
        faults[1].fault_id,
        faults[3].fault_id,
    ]
