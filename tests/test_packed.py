"""Tests for the bit-parallel (PPSFP) packed codegen engine.

The strongest check is the full-corpus parity sweep: on every one of the ten
benchmark designs, the packed simulator's per-fault detection verdicts *and*
detection cycles must exactly match the serial codegen baseline, across word
widths that exercise the degenerate single-fault case (1), partial last words
(the fault list does not divide the width evenly) and the full 64-lane
production shape.  The remaining tests pin the engine seams: the ``"packed"``
entry in the engine registry, good-machine trace parity, the lane layout and
word-level observation, packed cache keying, and word-aligned sharding.
"""

import pytest

from fixture_designs import COUNTER_SRC, MEMORY_SRC
from repro.api import ENGINES, compile_design, make_engine, simulate_good
from repro.baselines.base import SerialFaultSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.errors import SimulationError
from repro.fault.detection import ObservationManager
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.sim.codegen import (
    CodegenEngine,
    PackedLayout,
    design_fingerprint,
    generate_packed_source,
    packed_layout,
    packed_stride,
)
from repro.sim.engine import EventDrivenEngine
from repro.sim.kernel import SimulationKernel, partition_faults, run_sharded
from repro.sim.packed import (
    PackedCodegenEngine,
    PackedCodegenSimulator,
    make_packed_factory,
    pack_fault_words,
)

#: Cycles per benchmark for the corpus sweep; enough for observable activity.
PARITY_CYCLES = 40

#: Deliberately does not divide 8 or 64 evenly (partial last words).
PARITY_FAULTS = 10

#: Word widths: degenerate serial shape, partial words, production shape.
WIDTHS = [1, 8, 64]


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Keep every test away from the developer's real ~/.cache/repro-codegen."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


_workloads = {}


def _workload(name):
    """Compile each benchmark once per session, with its serial reference."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=PARITY_CYCLES)
        faults = sample_faults(
            generate_stuck_at_faults(design), PARITY_FAULTS, seed=7
        )
        reference = SerialFaultSimulator(design, engine="codegen").run(
            stimulus, faults
        )
        _workloads[name] = (design, stimulus, faults, reference)
    return _workloads[name]


# ------------------------------------------------------------ the parity sweep
@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_packed_matches_serial_codegen_on_corpus(name, width):
    """Verdicts AND detection cycles must be exact on all ten benchmarks."""
    design, stimulus, faults, reference = _workload(name)
    packed = PackedCodegenSimulator(design, width=width).run(stimulus, faults)
    assert packed.coverage.same_verdicts(reference.coverage), (
        f"{name} w={width}: verdicts disagree on "
        f"{packed.coverage.disagreements(reference.coverage)}"
    )
    assert packed.coverage.detections == reference.coverage.detections, (
        f"{name} w={width}: detection cycles differ"
    )


@pytest.mark.parametrize("name", ["alu", "riscv_mini", "sha256_c2v"])
def test_packed_without_early_exit_matches(name):
    """Lane dropping (early exit) must not change any verdict or cycle."""
    design, stimulus, faults, reference = _workload(name)
    packed = PackedCodegenSimulator(design, width=8, early_exit=False).run(
        stimulus, faults
    )
    assert packed.coverage.detections == reference.coverage.detections


def test_packed_word_count_and_partial_last_word(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    design, stimulus, faults, _ = _workload("apb")
    words = pack_fault_words(faults, 8)
    assert [len(word) for word in words] == [8, 2]
    sim = PackedCodegenSimulator(design, width=8)
    sim.run(stimulus, faults)
    assert sim.passes == 2
    # the padded last word reuses the full word's kernel: one cached source
    assert len(list(tmp_path.glob("*.py"))) == 1


# ------------------------------------------------------ lane-divergent corners
def test_divergent_memory_addressing(memory_stimulus):
    """Faults on address bits make lanes gather/scatter different words."""
    design = compile_design(MEMORY_SRC, top="scratchpad")
    population = generate_stuck_at_faults(design)
    faults = type(population)(
        [f for f in population if f.signal.name in ("waddr", "raddr", "we", "wdata")]
    )
    reference = SerialFaultSimulator(design, engine="codegen").run(
        memory_stimulus, faults
    )
    packed = PackedCodegenSimulator(design, width=len(faults)).run(
        memory_stimulus, faults
    )
    assert packed.coverage.detections == reference.coverage.detections


_BITSEL_SRC = """
module bitsel(
  input clk,
  input rst,
  input [2:0] idx,
  input bitval,
  input [7:0] base,
  output reg [7:0] q,
  output wire picked
);
  assign picked = q[idx];
  always @(posedge clk) begin
    if (rst) q <= base;
    else q[idx] <= bitval;
  end
endmodule
"""


def test_divergent_dynamic_bit_select():
    """Faults on the select index diverge both the bit read and the bit write."""
    from repro.sim.stimulus import RandomStimulus

    design = compile_design(_BITSEL_SRC, top="bitsel")
    stimulus = RandomStimulus(
        {"idx": 3, "bitval": 1, "base": 8},
        cycles=40,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 2 else 0),
        seed=29,
    )
    faults = generate_stuck_at_faults(design)
    reference = SerialFaultSimulator(design, engine="codegen").run(stimulus, faults)
    packed = PackedCodegenSimulator(design, width=16).run(stimulus, faults)
    assert packed.coverage.detections == reference.coverage.detections


_PARITY_SRC = """
module parity5(
  input clk,
  input [4:0] x,
  output reg p,
  output reg q
);
  always @(posedge clk) begin
    p <= ^x;
    q <= ~^x;
  end
endmodule
"""


def test_reduction_parity_with_tight_stride():
    """Regression: the parity fold must not bleed a higher lane's bits.

    With a 5-bit widest value the stride is 6, so a fold step's right shift
    lands lane k+1 bits inside lane k's mask window — a post-xor mask of the
    operand width is not enough (the shiftED operand needs the per-step
    ``mask(width - shift)`` window).
    """
    from repro.sim.stimulus import RandomStimulus

    design = compile_design(_PARITY_SRC, top="parity5")
    assert packed_stride(design) == 6
    stimulus = RandomStimulus({"x": 5}, cycles=30, clock="clk", seed=5)
    reference = EventDrivenEngine(design).run(stimulus)
    faults = generate_stuck_at_faults(design)
    engine = PackedCodegenEngine(design, faults=list(faults)[:6], use_cache=False)
    assert engine.run(stimulus) == reference
    serial = SerialFaultSimulator(design, engine="codegen").run(stimulus, faults)
    packed = PackedCodegenSimulator(design, width=8).run(stimulus, faults)
    assert packed.coverage.detections == serial.coverage.detections


# ----------------------------------------------------------- good-machine seam
def test_packed_engine_in_registry():
    assert "packed" in ENGINES


def test_packed_good_machine_trace_parity(counter_design, counter_stimulus):
    reference = simulate_good(counter_design, counter_stimulus, engine="event")
    packed = simulate_good(counter_design, counter_stimulus, engine="packed")
    assert packed == reference


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_packed_good_lane_trace_parity_on_corpus(name):
    """Lane 0 of a multi-lane word is the exact event-driven good machine.

    Detection parity alone could mask an error hitting every lane the same
    way; this pins the good lane's trace directly, with fault lanes active in
    the same word.
    """
    design, stimulus, faults, _ = _workload(name)
    reference = EventDrivenEngine(design).run(stimulus)
    engine = PackedCodegenEngine(design, faults=list(faults)[:5])
    trace = engine.run(stimulus)
    assert trace == reference, (
        f"packed good lane diverges from event-driven on {name} "
        f"at cycle {trace.first_difference(reference)}"
    )


def test_packed_satisfies_kernel_protocol(counter_design):
    engine = PackedCodegenEngine(counter_design, use_cache=False)
    assert isinstance(engine, SimulationKernel)
    assert engine.layout.lanes == 1


def test_packed_force_hook_single_lane(counter_design, counter_stimulus):
    """engine="packed" under a serial force hook matches the other kernels."""
    count = counter_design.signal("count")

    def hook(signal, value):
        return value | 1 if signal is count else value

    forced = make_engine(counter_design, "packed", force_hook=hook)
    trace = forced.run(counter_stimulus)
    assert trace == EventDrivenEngine(counter_design, force_hook=hook).run(
        counter_stimulus
    )


def test_serial_baseline_on_packed_engine():
    design, stimulus, faults, reference = _workload("apb")
    swapped = SerialFaultSimulator(design, engine="packed").run(stimulus, faults)
    assert swapped.coverage.detections == reference.coverage.detections


def test_packed_engine_rejects_faults_plus_hook(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    with pytest.raises(SimulationError, match="not both"):
        PackedCodegenEngine(
            counter_design,
            force_hook=lambda s, v: v,
            faults=[faults[0]],
            use_cache=False,
        )


def test_packed_engine_rejects_too_few_lanes(counter_design):
    faults = list(generate_stuck_at_faults(counter_design))[:4]
    with pytest.raises(SimulationError, match="lanes"):
        PackedCodegenEngine(counter_design, faults=faults, lanes=3, use_cache=False)


# ------------------------------------------------------------- layout plumbing
def test_packed_stride_leaves_a_guard_bit(counter_design):
    stride = packed_stride(counter_design)
    assert stride > max(s.width for s in counter_design.signals)


def test_layout_lane_accessors():
    layout = PackedLayout(4, 8)
    word = layout.replicate(0x5A)
    assert [layout.lane_value(word, lane) for lane in range(4)] == [0x5A] * 4
    assert layout.lane_value(word | (0x01 << 8), 1) == 0x5B


def test_peek_exposes_faulty_lanes(counter_design, counter_stimulus):
    faults = [generate_stuck_at_faults(counter_design).by_name("count[0]:SA1")]
    engine = PackedCodegenEngine(counter_design, faults=faults, use_cache=False)
    engine.run(counter_stimulus)
    assert engine.peek("count", lane=1) & 1 == 1


def test_observe_packed_scans_differing_lanes():
    design = compile_design(COUNTER_SRC, top="counter")
    faults = sample_faults(generate_stuck_at_faults(design), 3, seed=1)
    manager = ObservationManager(design, faults)
    layout = PackedLayout(4, 8)
    good = 0x21
    word = layout.replicate(good)
    word ^= 0x04 << (2 * 8)  # lane 2 differs
    newly = manager.observe_packed(
        [word], [None, 0, 1, 2], cycle=5, layout=layout
    )
    assert newly == [2]
    assert manager.detection_cycle(faults[1].fault_id) == 5
    # already-detected lanes are not re-reported
    assert manager.observe_packed([word], [None, 0, 1, 2], 6, layout) == []
    # a live mask excluding the lane suppresses the scan entirely
    word ^= 0x02 << 8  # lane 1 differs now too
    masked = manager.observe_packed(
        [word], [None, 0, 1, 2], 7, layout, live_mask=0
    )
    assert masked == []


# ------------------------------------------------------------------- the cache
def test_packed_cache_key_distinct_from_serial(tmp_path, monkeypatch, counter_design):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    CodegenEngine(counter_design)
    PackedCodegenEngine(counter_design)
    fingerprint = design_fingerprint(counter_design)
    sources = sorted(p.name for p in tmp_path.glob("*.py"))
    assert f"{fingerprint}.py" in sources
    assert len(sources) == 2 and sources[0] != sources[1]


def test_packed_cache_key_tracks_lane_count(tmp_path, monkeypatch, counter_design):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    faults = list(generate_stuck_at_faults(counter_design))
    PackedCodegenEngine(counter_design, faults=faults[:2])
    PackedCodegenEngine(counter_design, faults=faults[:5])
    assert len(list(tmp_path.glob("*.py"))) == 2


def test_packed_generated_source_is_deterministic(counter_design):
    layout = packed_layout(counter_design, 5)
    assert generate_packed_source(counter_design, layout) == generate_packed_source(
        counter_design, layout
    )


def test_packed_rejects_narrow_stride(counter_design):
    with pytest.raises(SimulationError, match="too narrow"):
        generate_packed_source(counter_design, PackedLayout(4, 2))


# ------------------------------------------------------------------- sharding
def test_partition_faults_word_aligned(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    words = pack_fault_words(faults, 4)
    shards = partition_faults(faults, 3, word_size=4)
    names = [f.name for shard in shards for f in shard]
    assert sorted(names) == sorted(f.name for f in faults)
    # every word survives intact inside some shard
    shard_names = [[f.name for f in shard] for shard in shards]
    for word in words:
        word_names = [f.name for f in word]
        assert any(
            flat[i : i + len(word_names)] == word_names
            for flat in shard_names
            for i in range(0, len(flat), 4)
        ), word_names


def test_run_sharded_with_packed_factory():
    design, stimulus, faults, reference = _workload("alu")
    sharded = run_sharded(
        design,
        stimulus,
        faults,
        workers=2,
        simulator_factory=make_packed_factory(width=4),
        word_size=4,
    )
    assert sharded.coverage.same_verdicts(reference.coverage)


def test_run_sharded_caps_pool_size(counter_design, counter_stimulus, monkeypatch):
    """max_workers overrides the os.cpu_count() pool cap (satellite fix)."""
    import repro.sim.kernel as kernel_mod

    seen = {}
    real_executor = kernel_mod.ThreadPoolExecutor

    class SpyExecutor(real_executor):
        def __init__(self, max_workers=None):
            seen["max_workers"] = max_workers
            super().__init__(max_workers=max_workers)

    monkeypatch.setattr(kernel_mod, "ThreadPoolExecutor", SpyExecutor)
    faults = generate_stuck_at_faults(counter_design)
    run_sharded(counter_design, counter_stimulus, faults, workers=8, max_workers=2)
    assert seen["max_workers"] == 2
    seen.clear()
    run_sharded(counter_design, counter_stimulus, faults, workers=8)
    import os

    cpu = max(1, os.cpu_count() or 1)
    if cpu == 1:
        # a one-slot pool short-circuits inline: no executor is constructed
        assert "max_workers" not in seen
    else:
        assert seen["max_workers"] <= cpu
