"""Tests for the process-pool campaign executor (repro.sim.parallel).

The strongest check mirrors the packed suite: on every one of the ten
benchmark designs, the process executor's per-fault verdicts *and* detection
cycles must exactly match the serial codegen baseline — chunking over worker
processes may only change wall-clock, never a verdict.  The remaining tests
pin the seams this PR adds: :class:`WorkloadSpec` pickling in all three modes,
word-aligned chunking, the ``executor=`` dispatcher in ``run_sharded`` (with
its no-pool short-circuits), the serial baselines' distributed loops, and the
verdict-plane campaign seams: cross-chunk dropping (parity with dropping on
AND off), streaming progress event ordering, resume seeding, the legacy
pickled-dict fallback, partial-verdict salvage when a worker dies, and
shared-memory segment cleanup after both clean and crashed campaigns.
"""

import pickle
import sys

import pytest

from fixture_designs import COUNTER_SRC
from repro.api import compile_design
from repro.baselines.base import SerialFaultSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.errors import SimulationError
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.harness.experiments import prepare_workload
from repro.sim.codegen import design_fingerprint
from repro.sim.kernel import EXECUTORS, run_sharded
from repro.sim.packed import pack_fault_words
from repro.sim.parallel import (
    CRASH_ENV_VAR,
    ParallelFaultSimulator,
    WorkloadSpec,
    chunk_fault_sites,
    run_multiprocess,
)
from repro.sim.resilience import RetryPolicy
from repro.sim.verdict_plane import VerdictPlane

#: Cycles per benchmark for the corpus sweep; enough for observable activity.
PARITY_CYCLES = 30

#: Deliberately does not divide 8 or 64 evenly (partial last words).
PARITY_FAULTS = 10

#: Word widths: degenerate serial shape, partial words, production shape.
WIDTHS = [1, 8, 64]


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Keep every test (and its spawned workers) off the real user cache."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


_workloads = {}


def _workload(name):
    """Compile each benchmark once per session, with its serial reference."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=PARITY_CYCLES)
        faults = sample_faults(
            generate_stuck_at_faults(design), PARITY_FAULTS, seed=7
        )
        reference = SerialFaultSimulator(design, engine="codegen").run(
            stimulus, faults
        )
        _workloads[name] = (design, stimulus, faults, reference)
    return _workloads[name]


# ------------------------------------------------------------ the parity sweep
@pytest.mark.parametrize("cross_drop", [True, False], ids=["drop", "nodrop"])
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_process_executor_matches_serial_codegen_on_corpus(name, cross_drop):
    """Verdicts AND detection cycles must be exact on all ten benchmarks.

    Parametrized over cross-chunk dropping because dropping may only ever
    *remove* redundant work — with it on or off, the verdicts and the
    detection cycles must be byte-identical to the serial baseline.
    """
    design, stimulus, faults, reference = _workload(name)
    result = run_multiprocess(
        design, stimulus, faults, workers=2, width=8, cross_drop=cross_drop
    )
    assert result.coverage.same_verdicts(reference.coverage), (
        f"{name}: process verdicts disagree on "
        f"{result.coverage.disagreements(reference.coverage)}"
    )
    assert result.coverage.detections == reference.coverage.detections, (
        f"{name}: detection cycles differ"
    )
    assert not result.partial


@pytest.mark.parametrize("cross_drop", [True, False], ids=["drop", "nodrop"])
@pytest.mark.parametrize("width", WIDTHS)
def test_process_executor_across_widths(width, cross_drop):
    """Chunking must respect word geometry at every width (partial words too)."""
    design, stimulus, faults, reference = _workload("apb")
    result = run_multiprocess(
        design, stimulus, faults, workers=2, width=width, cross_drop=cross_drop
    )
    assert result.coverage.detections == reference.coverage.detections


def test_parallel_simulator_class_face():
    design, stimulus, faults, reference = _workload("alu")
    simulator = ParallelFaultSimulator(design, workers=2, width=8)
    result = simulator.run(stimulus, faults)
    assert result.simulator == "PackedPPSFP-MP"
    assert result.coverage.detections == reference.coverage.detections
    assert simulator.stats.cycles > 0


def test_single_worker_short_circuits_to_inline(monkeypatch):
    """workers=1 must never pay pool startup (no executor is constructed)."""
    import repro.sim.parallel as parallel_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("ProcessPoolExecutor constructed for workers=1")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", forbidden)
    design, stimulus, faults, reference = _workload("apb")
    result = run_multiprocess(design, stimulus, faults, workers=1, width=8)
    assert result.coverage.detections == reference.coverage.detections


# -------------------------------------------------------------- workload specs
def test_workload_spec_benchmark_mode_pickle_roundtrip():
    design, stimulus, _, _ = _workload("apb")
    spec = WorkloadSpec.from_design(design).with_stimulus(stimulus)
    assert spec.benchmark == "apb"  # registry provenance wins
    clone = pickle.loads(pickle.dumps(spec))
    rebuilt, rebuilt_stimulus = clone.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(design)
    assert rebuilt_stimulus.num_cycles() == stimulus.num_cycles()
    assert all(
        rebuilt_stimulus.vector(c) == stimulus.vector(c)
        for c in range(stimulus.num_cycles())
    )
    assert rebuilt_stimulus.clock == stimulus.clock


def test_workload_spec_source_mode_pickle_roundtrip(counter_design, counter_stimulus):
    spec = WorkloadSpec.from_design(counter_design).with_stimulus(counter_stimulus)
    assert spec.source is not None and spec.top == "counter"
    clone = pickle.loads(pickle.dumps(spec))
    rebuilt, _ = clone.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(counter_design)


def test_workload_spec_design_blob_fallback(counter_stimulus):
    """A design with no compile provenance crosses the boundary as a pickle."""
    design = compile_design(COUNTER_SRC, top="counter")
    design.origin = None  # simulate a hand-assembled IR graph
    spec = WorkloadSpec.from_design(design).with_stimulus(counter_stimulus)
    assert spec.design_blob is not None
    clone = pickle.loads(pickle.dumps(spec))
    rebuilt, _ = clone.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(design)


def test_workload_spec_rejects_bad_modes():
    with pytest.raises(SimulationError, match="exactly one"):
        WorkloadSpec()
    with pytest.raises(SimulationError, match="exactly one"):
        WorkloadSpec(benchmark="apb", source="module m; endmodule")
    with pytest.raises(SimulationError, match="top"):
        WorkloadSpec(source="module m; endmodule")


# ------------------------------------------------------------------- chunking
def test_chunk_fault_sites_word_aligned():
    design, _, _, _ = _workload("apb")
    faults = generate_stuck_at_faults(design)
    words = pack_fault_words(faults, 8)
    chunks = chunk_fault_sites(faults, 8, max_chunks=3)
    assert len(chunks) <= 3
    # chunk boundaries are word boundaries: concatenating the chunks
    # reproduces the fault list in pack order, and every chunk holds a
    # multiple of the word size (except possibly the last)
    flat = [site for chunk in chunks for site in chunk]
    assert flat == [(f.signal.name, f.bit, f.value) for word in words for f in word]
    for chunk in chunks[:-1]:
        assert len(chunk) % 8 == 0


def test_chunk_fault_sites_oversubscription_bounds():
    design, _, _, _ = _workload("apb")
    faults = sample_faults(generate_stuck_at_faults(design), 10, seed=7)
    # 10 faults at width 1 = 10 words; more chunks than words clamps to words
    assert len(chunk_fault_sites(faults, 1, max_chunks=100)) == 10
    assert len(chunk_fault_sites(faults, 64, max_chunks=100)) == 1


# --------------------------------------------------------- streaming progress
def test_progress_events_are_ordered_and_monotone():
    """Events: one at submission, >= one final=True last, monotone detected."""
    design, stimulus, faults, reference = _workload("apb")
    events = []
    result = run_multiprocess(
        design,
        stimulus,
        faults,
        workers=2,
        width=8,
        on_progress=events.append,
        progress_interval=0.05,
    )
    assert len(events) >= 2
    first, last = events[0], events[-1]
    assert first.chunks_done == 0 and first.eta is None and not first.final
    assert last.final and not last.partial
    assert sum(e.final for e in events) == 1  # exactly one final event
    assert last.detected == len(reference.coverage.detections)
    assert last.chunks_done == last.chunks_total
    detected = [e.detected for e in events]
    assert detected == sorted(detected), "detected counts must be monotone"
    assert all(e.total == len(faults) for e in events)
    elapsed = [e.elapsed for e in events]
    assert elapsed == sorted(elapsed)
    assert 0.0 <= last.coverage <= 100.0


def test_progress_printer_formats_events(capsys):
    from repro.sim.parallel import CampaignProgress, progress_printer

    emit = progress_printer(stream=sys.stdout)
    emit(CampaignProgress(3, 10, 1, 4, elapsed=1.0, eta=3.0))
    emit(CampaignProgress(9, 10, 4, 4, elapsed=4.0, final=True, partial=True))
    out = capsys.readouterr().out
    assert "progress: 3/10 faults detected (30.0%)" in out
    assert "eta 3.0s" in out
    assert "done: 9/10" in out and "PARTIAL" in out


def test_default_progress_callback_reaches_campaigns():
    """set_default_progress (the harness --progress seam) needs no plumbing."""
    from repro.sim.parallel import set_default_progress

    design, stimulus, faults, _ = _workload("apb")
    events = []
    previous = set_default_progress(events.append)
    try:
        run_multiprocess(design, stimulus, faults, workers=1, width=8)
    finally:
        set_default_progress(previous)
    assert events and events[-1].final


# ----------------------------------------------------- resume + cross dropping
def test_resume_seeds_drop_work_and_survive_into_the_report():
    """Seeded verdicts are not re-simulated and come back verbatim."""
    design, stimulus, faults, reference = _workload("apb")
    full = run_multiprocess(design, stimulus, faults, workers=1, width=8)
    assert full.coverage.detections == reference.coverage.detections
    seeds = dict(reference.coverage.detections)
    resumed = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, resume_from=seeds
    )
    assert resumed.coverage.detections == reference.coverage.detections
    # every detected fault was seeded: the campaign only re-ran the
    # never-detected remainder, so it simulated strictly fewer lane-cycles
    assert resumed.stats.cycles < full.stats.cycles


def test_resume_rejects_unknown_fault_names():
    design, stimulus, faults, _ = _workload("apb")
    with pytest.raises(SimulationError, match="not in this campaign"):
        run_multiprocess(
            design, stimulus, faults, workers=1, resume_from={"no_such[0]:SA0": 3}
        )


def test_external_plane_is_shared_and_left_alive():
    """A caller-owned plane accumulates verdicts and is never unlinked here."""
    design, stimulus, faults, reference = _workload("apb")
    with VerdictPlane.create(len(faults)) as plane:
        result = run_multiprocess(
            design, stimulus, faults, workers=2, width=8, plane=plane
        )
        assert result.coverage.detections == reference.coverage.detections
        assert plane.detected_count() == len(reference.coverage.detections)
        assert plane.named_detections(faults) == reference.coverage.detections
        # a second campaign over the same plane drops every *detected* fault
        # at chunk start: same verdicts, strictly less simulated work (the
        # never-detected faults still have to run the full stimulus)
        rerun = run_multiprocess(
            design, stimulus, faults, workers=1, width=8, plane=plane
        )
        assert rerun.coverage.detections == reference.coverage.detections
        assert rerun.stats.cycles < result.stats.cycles


def test_mis_sized_external_plane_is_rejected():
    design, stimulus, faults, _ = _workload("apb")
    with VerdictPlane.create(len(faults) + 3) as plane:
        with pytest.raises(SimulationError, match="sized for"):
            run_multiprocess(design, stimulus, faults, workers=1, plane=plane)


def test_legacy_pickled_merge_fallback_is_exact():
    """shared_verdicts=False (the no-/dev/shm path) must not change verdicts."""
    design, stimulus, faults, reference = _workload("apb")
    events = []
    result = run_multiprocess(
        design,
        stimulus,
        faults,
        workers=2,
        width=8,
        shared_verdicts=False,
        on_progress=events.append,
    )
    assert result.coverage.detections == reference.coverage.detections
    assert events[-1].final
    assert events[-1].detected == len(reference.coverage.detections)


# ------------------------------------------------------------- crash recovery
# retries=0 + degrade=False pin the historical pre-supervision semantics: one
# failure per chunk, no quarantine-to-inline rescue — the salvage contract.
def test_worker_crash_salvages_partial_verdicts(monkeypatch):
    """A dead worker yields a partial=True result, never a hang or a loss."""
    design, stimulus, faults, reference = _workload("apb")
    # chunks at width 4 start at global indexes 0, 4, 8: the base-0 chunk
    # completes (the injector's drain pause gives it time), the rest crash
    monkeypatch.setenv(CRASH_ENV_VAR, "4")
    result = run_multiprocess(
        design, stimulus, faults, workers=2, width=4, retries=0, degrade=False
    )
    assert result.partial
    assert result.stats.chunks_failed > 0
    salvaged = result.coverage.detections
    reference_cycles = reference.coverage.detections
    assert salvaged, "the completed chunk's verdicts must be salvaged"
    for name, cycle in salvaged.items():
        assert reference_cycles[name] == cycle, (
            f"salvaged cycle for {name} must match the serial baseline"
        )


def test_worker_crash_self_heals_by_default(monkeypatch):
    """The legacy crash hook no longer ends a default campaign: the poison
    chunks are quarantined and finished inline, verdicts stay exact."""
    design, stimulus, faults, reference = _workload("apb")
    monkeypatch.setenv(CRASH_ENV_VAR, "4")
    result = run_multiprocess(
        design, stimulus, faults, workers=2, width=4,
        retries=RetryPolicy(max_attempts=2, backoff=0.05),
    )
    assert not result.partial
    assert result.stats.chunks_quarantined > 0
    assert result.coverage.detections == reference.coverage.detections


def test_worker_crash_keeps_resume_seeds(monkeypatch):
    """Seeded verdicts survive a crash even if no chunk ever completes."""
    design, stimulus, faults, reference = _workload("apb")
    seeds = dict(list(reference.coverage.detections.items())[:2])
    monkeypatch.setenv(CRASH_ENV_VAR, "0")  # every chunk crashes
    result = run_multiprocess(
        design, stimulus, faults, workers=2, width=4, resume_from=seeds,
        retries=0, degrade=False,
    )
    assert result.partial
    for name, cycle in seeds.items():
        assert result.coverage.detections[name] == cycle


def test_worker_crash_fail_fast_without_salvage(monkeypatch):
    """salvage=False restores the historical fail-fast error contract."""
    design, stimulus, faults, _ = _workload("apb")
    monkeypatch.setenv(CRASH_ENV_VAR, "0")
    with pytest.raises(SimulationError, match="worker process died"):
        run_multiprocess(
            design, stimulus, faults, workers=2, width=4, salvage=False,
            retries=0, degrade=False,
        )


# ----------------------------------------------------------------- shm hygiene
def _run_and_capture_segment(monkeypatch, **kwargs):
    """Run an apb campaign, returning (result, the plane segment name used)."""
    design, stimulus, faults, _ = _workload("apb")
    names = []
    real_create = VerdictPlane.create.__func__

    def capturing_create(cls, n_faults):
        plane = real_create(cls, n_faults)
        names.append(plane.name)
        return plane

    monkeypatch.setattr(
        VerdictPlane, "create", classmethod(capturing_create)
    )
    result = run_multiprocess(design, stimulus, faults, **kwargs)
    assert len(names) == 1
    return result, names[0]


def test_campaign_unlinks_its_segment(monkeypatch):
    """No /dev/shm leak after a clean campaign: attach must fail afterwards."""
    _, name = _run_and_capture_segment(monkeypatch, workers=2, width=8)
    with pytest.raises(FileNotFoundError):
        VerdictPlane.attach(name)


def test_crashed_campaign_unlinks_its_segment(monkeypatch):
    """The finally-block unlink holds on the salvage path too."""
    monkeypatch.setenv(CRASH_ENV_VAR, "0")
    result, name = _run_and_capture_segment(
        monkeypatch, workers=2, width=4, retries=0, degrade=False
    )
    assert result.partial
    with pytest.raises(FileNotFoundError):
        VerdictPlane.attach(name)


# -------------------------------------------------------- alternative runners
def test_vector_runner_pooled_matches_serial():
    pytest.importorskip("numpy")
    design, stimulus, faults, reference = _workload("apb")
    result = run_multiprocess(
        design, stimulus, faults, workers=2, runner=("vector", {"width": 4})
    )
    assert result.simulator == "VectorPPSFP-MP"
    assert result.coverage.detections == reference.coverage.detections


# ------------------------------------------------- the run_sharded dispatcher
def test_run_sharded_serial_executor_never_builds_a_pool(
    counter_design, counter_stimulus, monkeypatch
):
    import repro.sim.kernel as kernel_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("ThreadPoolExecutor constructed for executor='serial'")

    monkeypatch.setattr(kernel_mod, "ThreadPoolExecutor", forbidden)
    faults = generate_stuck_at_faults(counter_design)
    from repro.core.framework import EraserSimulator

    single = EraserSimulator(counter_design).run(counter_stimulus, faults)
    sharded = run_sharded(
        counter_design, counter_stimulus, faults, workers=3, executor="serial"
    )
    assert sharded.coverage.same_verdicts(single.coverage)


def test_run_sharded_single_slot_short_circuits_inline(
    counter_design, counter_stimulus, monkeypatch
):
    """max_workers=1 resolves to one pool slot: run inline, skip the pool."""
    import repro.sim.kernel as kernel_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("ThreadPoolExecutor constructed for a one-slot pool")

    monkeypatch.setattr(kernel_mod, "ThreadPoolExecutor", forbidden)
    faults = generate_stuck_at_faults(counter_design)
    result = run_sharded(
        counter_design, counter_stimulus, faults, workers=4, max_workers=1
    )
    assert result.coverage.total_faults == len(faults)


def test_run_sharded_process_executor_matches():
    design, stimulus, faults, reference = _workload("apb")
    result = run_sharded(
        design, stimulus, faults, workers=2, word_size=8, executor="process"
    )
    assert result.coverage.same_verdicts(reference.coverage)


def test_run_sharded_rejects_unknown_executor(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    with pytest.raises(SimulationError, match="unknown executor"):
        run_sharded(counter_design, counter_stimulus, faults, executor="gpu")


def test_run_sharded_process_rejects_factory(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    with pytest.raises(SimulationError, match="process boundary"):
        run_sharded(
            counter_design,
            counter_stimulus,
            faults,
            executor="process",
            simulator_factory=lambda d: None,
        )


# ------------------------------------------------- serial-baseline executors
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_serial_baseline_distributed_executors(executor):
    design, stimulus, faults, reference = _workload("apb")
    simulator = SerialFaultSimulator(
        design, engine="codegen", executor=executor, workers=2
    )
    result = simulator.run(stimulus, faults)
    assert result.coverage.detections == reference.coverage.detections


def test_serial_baseline_rejects_unknown_executor(counter_design):
    with pytest.raises(SimulationError, match="unknown executor"):
        SerialFaultSimulator(counter_design, executor="gpu")


def test_serial_baseline_process_needs_an_engine(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    simulator = SerialFaultSimulator(counter_design, executor="process")
    with pytest.raises(SimulationError, match="engine"):
        simulator.run(counter_stimulus, faults)


def test_executor_registry_is_consistent():
    from repro.api import EXECUTORS as api_executors

    assert EXECUTORS == ("serial", "thread", "process")
    assert api_executors is EXECUTORS


# --------------------------------------------------------- harness threading
def test_experiment_workload_process_campaign():
    workload = prepare_workload(
        "alu", cycles=PARITY_CYCLES, fault_count=PARITY_FAULTS,
        executor="process", workers=2,
    )
    reference = SerialFaultSimulator(workload.design, engine="codegen").run(
        workload.stimulus, workload.faults
    )
    result = workload.run_faults(width=8)
    assert result.coverage.detections == reference.coverage.detections
    # the spec pickles and rebuilds the identical design
    spec = pickle.loads(pickle.dumps(workload.workload_spec()))
    rebuilt, _ = spec.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(workload.design)
