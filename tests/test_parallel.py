"""Tests for the process-pool campaign executor (repro.sim.parallel).

The strongest check mirrors the packed suite: on every one of the ten
benchmark designs, the process executor's per-fault verdicts *and* detection
cycles must exactly match the serial codegen baseline — chunking over worker
processes may only change wall-clock, never a verdict.  The remaining tests
pin the seams this PR adds: :class:`WorkloadSpec` pickling in all three modes,
word-aligned chunking, the ``executor=`` dispatcher in ``run_sharded`` (with
its no-pool short-circuits), the serial baselines' distributed loops, and the
crash-recovery contract (a dead worker surfaces an error, never a hang).
"""

import pickle

import pytest

from fixture_designs import COUNTER_SRC
from repro.api import compile_design
from repro.baselines.base import SerialFaultSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.errors import SimulationError
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.harness.experiments import prepare_workload
from repro.sim.codegen import design_fingerprint
from repro.sim.kernel import EXECUTORS, run_sharded
from repro.sim.packed import pack_fault_words
from repro.sim.parallel import (
    CRASH_ENV_VAR,
    ParallelFaultSimulator,
    WorkloadSpec,
    chunk_fault_sites,
    run_multiprocess,
)

#: Cycles per benchmark for the corpus sweep; enough for observable activity.
PARITY_CYCLES = 30

#: Deliberately does not divide 8 or 64 evenly (partial last words).
PARITY_FAULTS = 10

#: Word widths: degenerate serial shape, partial words, production shape.
WIDTHS = [1, 8, 64]


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Keep every test (and its spawned workers) off the real user cache."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))


_workloads = {}


def _workload(name):
    """Compile each benchmark once per session, with its serial reference."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=PARITY_CYCLES)
        faults = sample_faults(
            generate_stuck_at_faults(design), PARITY_FAULTS, seed=7
        )
        reference = SerialFaultSimulator(design, engine="codegen").run(
            stimulus, faults
        )
        _workloads[name] = (design, stimulus, faults, reference)
    return _workloads[name]


# ------------------------------------------------------------ the parity sweep
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_process_executor_matches_serial_codegen_on_corpus(name):
    """Verdicts AND detection cycles must be exact on all ten benchmarks."""
    design, stimulus, faults, reference = _workload(name)
    result = run_multiprocess(design, stimulus, faults, workers=2, width=8)
    assert result.coverage.same_verdicts(reference.coverage), (
        f"{name}: process verdicts disagree on "
        f"{result.coverage.disagreements(reference.coverage)}"
    )
    assert result.coverage.detections == reference.coverage.detections, (
        f"{name}: detection cycles differ"
    )


@pytest.mark.parametrize("width", WIDTHS)
def test_process_executor_across_widths(width):
    """Chunking must respect word geometry at every width (partial words too)."""
    design, stimulus, faults, reference = _workload("apb")
    result = run_multiprocess(design, stimulus, faults, workers=2, width=width)
    assert result.coverage.detections == reference.coverage.detections


def test_parallel_simulator_class_face():
    design, stimulus, faults, reference = _workload("alu")
    simulator = ParallelFaultSimulator(design, workers=2, width=8)
    result = simulator.run(stimulus, faults)
    assert result.simulator == "PackedPPSFP-MP"
    assert result.coverage.detections == reference.coverage.detections
    assert simulator.stats.cycles > 0


def test_single_worker_short_circuits_to_inline(monkeypatch):
    """workers=1 must never pay pool startup (no executor is constructed)."""
    import repro.sim.parallel as parallel_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("ProcessPoolExecutor constructed for workers=1")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", forbidden)
    design, stimulus, faults, reference = _workload("apb")
    result = run_multiprocess(design, stimulus, faults, workers=1, width=8)
    assert result.coverage.detections == reference.coverage.detections


# -------------------------------------------------------------- workload specs
def test_workload_spec_benchmark_mode_pickle_roundtrip():
    design, stimulus, _, _ = _workload("apb")
    spec = WorkloadSpec.from_design(design).with_stimulus(stimulus)
    assert spec.benchmark == "apb"  # registry provenance wins
    clone = pickle.loads(pickle.dumps(spec))
    rebuilt, rebuilt_stimulus = clone.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(design)
    assert rebuilt_stimulus.num_cycles() == stimulus.num_cycles()
    assert all(
        rebuilt_stimulus.vector(c) == stimulus.vector(c)
        for c in range(stimulus.num_cycles())
    )
    assert rebuilt_stimulus.clock == stimulus.clock


def test_workload_spec_source_mode_pickle_roundtrip(counter_design, counter_stimulus):
    spec = WorkloadSpec.from_design(counter_design).with_stimulus(counter_stimulus)
    assert spec.source is not None and spec.top == "counter"
    clone = pickle.loads(pickle.dumps(spec))
    rebuilt, _ = clone.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(counter_design)


def test_workload_spec_design_blob_fallback(counter_stimulus):
    """A design with no compile provenance crosses the boundary as a pickle."""
    design = compile_design(COUNTER_SRC, top="counter")
    design.origin = None  # simulate a hand-assembled IR graph
    spec = WorkloadSpec.from_design(design).with_stimulus(counter_stimulus)
    assert spec.design_blob is not None
    clone = pickle.loads(pickle.dumps(spec))
    rebuilt, _ = clone.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(design)


def test_workload_spec_rejects_bad_modes():
    with pytest.raises(SimulationError, match="exactly one"):
        WorkloadSpec()
    with pytest.raises(SimulationError, match="exactly one"):
        WorkloadSpec(benchmark="apb", source="module m; endmodule")
    with pytest.raises(SimulationError, match="top"):
        WorkloadSpec(source="module m; endmodule")


# ------------------------------------------------------------------- chunking
def test_chunk_fault_sites_word_aligned():
    design, _, _, _ = _workload("apb")
    faults = generate_stuck_at_faults(design)
    words = pack_fault_words(faults, 8)
    chunks = chunk_fault_sites(faults, 8, max_chunks=3)
    assert len(chunks) <= 3
    # chunk boundaries are word boundaries: concatenating the chunks
    # reproduces the fault list in pack order, and every chunk holds a
    # multiple of the word size (except possibly the last)
    flat = [site for chunk in chunks for site in chunk]
    assert flat == [(f.signal.name, f.bit, f.value) for word in words for f in word]
    for chunk in chunks[:-1]:
        assert len(chunk) % 8 == 0


def test_chunk_fault_sites_oversubscription_bounds():
    design, _, _, _ = _workload("apb")
    faults = sample_faults(generate_stuck_at_faults(design), 10, seed=7)
    # 10 faults at width 1 = 10 words; more chunks than words clamps to words
    assert len(chunk_fault_sites(faults, 1, max_chunks=100)) == 10
    assert len(chunk_fault_sites(faults, 64, max_chunks=100)) == 1


# ------------------------------------------------------------- crash recovery
def test_worker_crash_surfaces_an_error_not_a_hang(monkeypatch):
    design, stimulus, faults, _ = _workload("apb")
    monkeypatch.setenv(CRASH_ENV_VAR, "1")
    with pytest.raises(SimulationError, match="worker process died"):
        run_multiprocess(design, stimulus, faults, workers=2, width=4)


# ------------------------------------------------- the run_sharded dispatcher
def test_run_sharded_serial_executor_never_builds_a_pool(
    counter_design, counter_stimulus, monkeypatch
):
    import repro.sim.kernel as kernel_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("ThreadPoolExecutor constructed for executor='serial'")

    monkeypatch.setattr(kernel_mod, "ThreadPoolExecutor", forbidden)
    faults = generate_stuck_at_faults(counter_design)
    from repro.core.framework import EraserSimulator

    single = EraserSimulator(counter_design).run(counter_stimulus, faults)
    sharded = run_sharded(
        counter_design, counter_stimulus, faults, workers=3, executor="serial"
    )
    assert sharded.coverage.same_verdicts(single.coverage)


def test_run_sharded_single_slot_short_circuits_inline(
    counter_design, counter_stimulus, monkeypatch
):
    """max_workers=1 resolves to one pool slot: run inline, skip the pool."""
    import repro.sim.kernel as kernel_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("ThreadPoolExecutor constructed for a one-slot pool")

    monkeypatch.setattr(kernel_mod, "ThreadPoolExecutor", forbidden)
    faults = generate_stuck_at_faults(counter_design)
    result = run_sharded(
        counter_design, counter_stimulus, faults, workers=4, max_workers=1
    )
    assert result.coverage.total_faults == len(faults)


def test_run_sharded_process_executor_matches():
    design, stimulus, faults, reference = _workload("apb")
    result = run_sharded(
        design, stimulus, faults, workers=2, word_size=8, executor="process"
    )
    assert result.coverage.same_verdicts(reference.coverage)


def test_run_sharded_rejects_unknown_executor(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    with pytest.raises(SimulationError, match="unknown executor"):
        run_sharded(counter_design, counter_stimulus, faults, executor="gpu")


def test_run_sharded_process_rejects_factory(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    with pytest.raises(SimulationError, match="process boundary"):
        run_sharded(
            counter_design,
            counter_stimulus,
            faults,
            executor="process",
            simulator_factory=lambda d: None,
        )


# ------------------------------------------------- serial-baseline executors
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_serial_baseline_distributed_executors(executor):
    design, stimulus, faults, reference = _workload("apb")
    simulator = SerialFaultSimulator(
        design, engine="codegen", executor=executor, workers=2
    )
    result = simulator.run(stimulus, faults)
    assert result.coverage.detections == reference.coverage.detections


def test_serial_baseline_rejects_unknown_executor(counter_design):
    with pytest.raises(SimulationError, match="unknown executor"):
        SerialFaultSimulator(counter_design, executor="gpu")


def test_serial_baseline_process_needs_an_engine(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    simulator = SerialFaultSimulator(counter_design, executor="process")
    with pytest.raises(SimulationError, match="engine"):
        simulator.run(counter_stimulus, faults)


def test_executor_registry_is_consistent():
    from repro.api import EXECUTORS as api_executors

    assert EXECUTORS == ("serial", "thread", "process")
    assert api_executors is EXECUTORS


# --------------------------------------------------------- harness threading
def test_experiment_workload_process_campaign():
    workload = prepare_workload(
        "alu", cycles=PARITY_CYCLES, fault_count=PARITY_FAULTS,
        executor="process", workers=2,
    )
    reference = SerialFaultSimulator(workload.design, engine="codegen").run(
        workload.stimulus, workload.faults
    )
    result = workload.run_faults(width=8)
    assert result.coverage.detections == reference.coverage.detections
    # the spec pickles and rebuilds the identical design
    spec = pickle.loads(pickle.dumps(workload.workload_spec()))
    rebuilt, _ = spec.build()
    assert design_fingerprint(rebuilt) == design_fingerprint(workload.design)
