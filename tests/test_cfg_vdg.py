"""Tests for control-flow graph and visibility dependency graph construction."""

import pytest

from repro.api import compile_design
from repro.cfg.builder import CfgNode, build_cfg
from repro.cfg.vdg import build_vdg

BRANCHY_SRC = """
module branchy(
  input clk,
  input [7:0] s,
  input [7:0] c,
  input [7:0] g,
  input [7:0] k,
  input [7:0] b,
  output reg [7:0] r,
  output reg [7:0] a
);
  always @(posedge clk) begin
    if (s == 0) begin
      r <= c + g;
      a <= k;
    end
    else if (s == 1)
      r <= 0;
    else begin
      a <= 0;
      if (b == 0)
        r <= r + 1;
      else
        r <= r * a;
    end
  end
endmodule
"""

BLOCKING_SRC = """
module blocky(
  input clk,
  input [7:0] a,
  input [7:0] b,
  output reg [7:0] y
);
  reg [7:0] t;
  always @(posedge clk) begin
    t = a + 1;
    if (t[0]) y <= b;
    else y <= a;
  end
endmodule
"""


@pytest.fixture
def branchy_node():
    design = compile_design(BRANCHY_SRC, top="branchy")
    return design, design.behavioral_nodes[0]


@pytest.fixture
def blocky_node():
    design = compile_design(BLOCKING_SRC, top="blocky")
    return design, design.behavioral_nodes[0]


def test_cfg_has_entry_and_exit(branchy_node):
    _, node = branchy_node
    cfg = build_cfg(node)
    assert cfg.entry.kind == CfgNode.ENTRY
    assert cfg.exit.kind == CfgNode.EXIT
    assert cfg.entry.succs


def test_cfg_counts_match_paper_example(branchy_node):
    # the Fig. 5 example has three decisions (s==0, s==1, b==0)
    _, node = branchy_node
    cfg = build_cfg(node)
    assert cfg.decision_count == 3
    assert cfg.segment_count >= 3


def test_cfg_is_acyclic(branchy_node):
    _, node = branchy_node
    assert build_cfg(node).paths_are_acyclic()


def test_decision_successor_arity(branchy_node):
    _, node = branchy_node
    cfg = build_cfg(node)
    for cnode in cfg.nodes:
        if cnode.is_decision:
            assert len(cnode.succs) == 2  # if/else only in this design
        elif cnode.is_segment:
            assert len(cnode.succs) == 1


def test_segments_have_no_branches(branchy_node):
    _, node = branchy_node
    cfg = build_cfg(node)
    for cnode in cfg.nodes:
        for stmt in cnode.stmts:
            assert not hasattr(stmt, "then_body")


def test_vdg_mirrors_cfg_shape(branchy_node):
    _, node = branchy_node
    vdg = build_vdg(node)
    cfg = vdg.cfg
    assert len(vdg.nodes) == len(cfg.nodes)
    assert vdg.decision_count == cfg.decision_count
    assert vdg.dependency_count == cfg.segment_count


def test_vdg_decision_reads(branchy_node):
    design, node = branchy_node
    vdg = build_vdg(node)
    decision_reads = set()
    for vnode in vdg.nodes:
        if vnode.is_decision:
            decision_reads |= {s.name for s in vnode.reads}
    assert decision_reads == {"s", "b"}


def test_vdg_dependency_reads(branchy_node):
    design, node = branchy_node
    vdg = build_vdg(node)
    dependency_reads = set()
    for vnode in vdg.nodes:
        if vnode.is_segment:
            dependency_reads |= {s.name for s in vnode.reads}
    assert {"c", "g", "k", "r", "a"} <= dependency_reads


def test_vdg_select_arm_uses_view(branchy_node):
    design, node = branchy_node
    vdg = build_vdg(node)
    s = design.signal("s")

    class View:
        def __init__(self, value):
            self.value = value

        def get(self, signal):
            return self.value if signal is s else 0

        def get_word(self, signal, index):
            return 0

    s_eq_0 = next(
        n
        for n in vdg.nodes
        if n.is_decision and s in n.reads and n.decision.cond.right.value == 0
    )
    assert s_eq_0.select_arm(View(0)) == 0
    assert s_eq_0.select_arm(View(5)) == 1


def test_vdg_local_dependent_decision(blocky_node):
    design, node = blocky_node
    vdg = build_vdg(node)
    decisions = [n for n in vdg.nodes if n.is_decision]
    assert len(decisions) == 1
    assert decisions[0].local_dependent
    # support expands through the blocking assignment t = a + 1
    assert design.signal("a") in decisions[0].support


def test_vdg_non_local_decision(branchy_node):
    _, node = branchy_node
    vdg = build_vdg(node)
    assert all(not n.local_dependent for n in vdg.nodes if n.is_decision)


def test_case_statement_cfg():
    source = """
    module casey(input clk, input [1:0] sel, input [7:0] a, output reg [7:0] y);
      always @(posedge clk) begin
        case (sel)
          2'd0: y <= a;
          2'd1: y <= a + 1;
          2'd2: y <= a - 1;
          default: y <= 0;
        endcase
      end
    endmodule
    """
    design = compile_design(source, top="casey")
    cfg = build_cfg(design.behavioral_nodes[0])
    decision = next(n for n in cfg.nodes if n.is_decision)
    assert len(decision.succs) == 4  # three arms + default
