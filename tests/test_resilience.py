"""Unit tests for the self-healing campaign runtime (repro.sim.resilience).

The :class:`ChunkSupervisor` takes every campaign-specific action as an
injected callable, so these tests drive it with a *fake* pool whose futures
resolve however the scenario needs — success, in-chunk exception, a broken
executor, or a hang — and assert the supervision decisions alone: retry
counters, backoff requeues, blame assignment, watchdog stalls, quarantine,
the inline fallback, and proven-chunk skipping.  Nothing here spawns a
process; the real-pool integration paths live in test_chaos.py and
test_parallel.py.
"""

import time
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.errors import SimulationError
from repro.sim.resilience import (
    ChunkState,
    ChunkSupervisor,
    RetryPolicy,
    require_at_least,
    require_positive,
)


# ------------------------------------------------------------------- policies
def test_retry_policy_delay_grows_and_caps():
    policy = RetryPolicy(backoff=0.5, backoff_factor=2.0, jitter=0.0, max_backoff=3.0)
    assert policy.delay(1) == 0.5
    assert policy.delay(2) == 1.0
    assert policy.delay(3) == 2.0
    assert policy.delay(4) == 3.0  # capped
    assert policy.delay(10) == 3.0


def test_retry_policy_jitter_stays_in_band():
    policy = RetryPolicy(backoff=1.0, backoff_factor=1.0, jitter=0.2, max_backoff=10.0)
    for _ in range(50):
        assert 0.8 <= policy.delay(1) <= 1.2


def test_retry_policy_from_retries():
    assert RetryPolicy.from_retries(0).max_attempts == 1
    assert RetryPolicy.from_retries(3).max_attempts == 4
    policy = RetryPolicy(max_attempts=7)
    assert RetryPolicy.from_retries(policy) is policy
    with pytest.raises(SimulationError, match="retries"):
        RetryPolicy.from_retries(-1)


def test_validation_helpers_name_the_argument():
    with pytest.raises(SimulationError, match="workers"):
        require_at_least("workers", 0, 1)
    with pytest.raises(SimulationError, match="workers"):
        require_at_least("workers", True, 1)  # bools are not counts
    with pytest.raises(SimulationError, match="chunk_timeout"):
        require_positive("chunk_timeout", 0)
    require_at_least("drop_stride", 0, 0)
    require_positive("interval", 0.1)


# ------------------------------------------------------- the fake pool harness
class FakePool:
    """A pool whose futures a scenario script resolves at submit time."""

    def __init__(self, script):
        #: maps (chunk index, attempt) -> an action; see _Harness.submit
        self.script = script
        self.shutdowns = []
        self._processes = {}

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns.append((wait, cancel_futures))


class _Harness:
    """Wire a ChunkSupervisor to scripted outcomes and record what happened."""

    def __init__(self, n_chunks, script, proven=(), pools_fail=0, **supervisor_kw):
        self.states = [ChunkState(i, sites=[("s", 0, 0)], base=i * 4) for i in range(n_chunks)]
        self.script = dict(script)
        self.proven = set(proven)
        self.pools_fail = pools_fail
        self.pools = []
        self.completions = []
        self.inline_runs = []
        self.ticks = 0
        policy = supervisor_kw.pop(
            "policy", RetryPolicy(max_attempts=2, backoff=0.01, jitter=0.0)
        )
        self.supervisor = ChunkSupervisor(
            self.states,
            policy,
            self.make_pool,
            self.submit,
            self.run_inline,
            self.chunk_proven,
            self.on_complete,
            self.on_tick,
            poll_interval=0.02,
            **supervisor_kw,
        )

    def make_pool(self):
        if len(self.pools) < self.pools_fail:
            self.pools.append(None)
            raise OSError("no pool for you")
        pool = FakePool(self.script)
        self.pools.append(pool)
        return pool

    def submit(self, pool, state):
        future = Future()
        action = self.script.get((state.index, state.attempts - 1), "ok")
        if action == "ok":
            future.set_result(({f"f{state.index}": 5}, 10, 0.01))
        elif action == "raise":
            future.set_exception(ValueError(f"chunk {state.index} scripted failure"))
        elif action == "broken":
            future.set_running_or_notify_cancel()
            future.set_exception(BrokenExecutor("worker died"))
        elif action == "hang":
            future.set_running_or_notify_cancel()  # running, never resolves
        else:  # pragma: no cover - script typo guard
            raise AssertionError(action)
        return future

    def run_inline(self, state):
        self.inline_runs.append(state.index)
        if self.script.get((state.index, "inline")) == "raise":
            raise ValueError("inline failure")
        return {f"f{state.index}": 5}, 10, 0.01

    def chunk_proven(self, state):
        return state.index in self.proven

    def on_complete(self, state, detections, cycles):
        self.completions.append((state.index, state.outcome, detections))

    def on_tick(self):
        self.ticks += 1

    def run(self):
        self.supervisor.run()
        return self


# ----------------------------------------------------------------- happy path
def test_all_chunks_complete_first_try():
    h = _Harness(3, {}).run()
    assert [s.outcome for s in h.states] == ["completed"] * 3
    assert all(s.attempts == 1 and s.failures == 0 for s in h.states)
    assert len(h.pools) == 1
    assert h.supervisor.pool_breaks == 0
    assert h.ticks >= 1


def test_proven_chunks_are_skipped_not_submitted():
    h = _Harness(3, {}, proven={1}).run()
    assert h.states[1].outcome == "skipped"
    assert h.states[1].attempts == 0
    skipped = [c for c in h.completions if c[0] == 1]
    assert skipped == [(1, "skipped", {})]


# -------------------------------------------------------------------- retries
def test_in_chunk_exception_requeues_in_same_pool():
    h = _Harness(2, {(1, 0): "raise"}).run()
    assert [s.outcome for s in h.states] == ["completed", "completed"]
    assert h.states[1].attempts == 2
    assert h.states[1].failures == 1
    assert len(h.pools) == 1  # a raise never costs the pool


def test_broken_pool_is_rebuilt_and_chunk_retried():
    h = _Harness(2, {(1, 0): "broken"}).run()
    assert [s.outcome for s in h.states] == ["completed", "completed"]
    assert h.supervisor.pool_breaks == 1
    assert len(h.pools) == 2
    # the culprit was blamed; the innocent completed chunk was not
    assert h.states[1].failures == 1
    assert h.states[0].failures == 0
    # every pool generation is shut down without waiting, cancelling queues
    assert all(pool.shutdowns == [(False, True)] for pool in h.pools)


def test_watchdog_stalls_out_a_hung_chunk():
    h = _Harness(2, {(1, 0): "hang"}, chunk_timeout=0.05).run()
    assert [s.outcome for s in h.states] == ["completed", "completed"]
    assert h.supervisor.pool_breaks == 1
    assert h.states[1].failures == 1  # only the running (hung) future is blamed


def test_adaptive_deadline_arms_after_first_completion():
    h = _Harness(2, {(1, 0): "hang"})
    assert h.supervisor._deadline() is None  # unarmed: nothing observed yet
    h.supervisor._max_chunk_wall = 0.001
    # floored, then scaled once observations dominate the floor
    assert h.supervisor._deadline() == pytest.approx(10.0)
    h.supervisor._max_chunk_wall = 2.0
    assert h.supervisor._deadline() == pytest.approx(40.0)


# ------------------------------------------------------- quarantine and beyond
def test_poison_chunk_is_quarantined_then_finished_inline():
    h = _Harness(2, {(1, 0): "broken", (1, 1): "broken"}).run()
    assert h.states[1].quarantined
    assert h.states[1].outcome == "inline"
    assert h.inline_runs == [1]
    assert h.supervisor.pool_breaks == 2


def test_degrade_false_fails_the_chunk_instead():
    h = _Harness(2, {(1, 0): "broken", (1, 1): "broken"}, degrade=False).run()
    assert h.states[1].outcome == "failed"
    assert h.inline_runs == []


def test_inline_failure_marks_the_chunk_failed():
    h = _Harness(
        1, {(0, 0): "broken", (0, 1): "broken", (0, "inline"): "raise"}
    ).run()
    assert h.states[0].outcome == "failed"
    assert isinstance(h.states[0].error, ValueError)


def test_unavailable_pool_degrades_everything_inline():
    h = _Harness(2, {}, pools_fail=99).run()
    assert [s.outcome for s in h.states] == ["inline", "inline"]
    assert h.inline_runs == [0, 1]


def test_quarantined_chunk_proven_meanwhile_is_skipped():
    # the chunk's faults all got proven (by siblings / a seed) before the
    # inline rung ran it: the fallback must consult the plane too
    h = _Harness(1, {(0, 0): "broken", (0, 1): "broken"})
    original = h.chunk_proven

    def proven_after_quarantine(state):
        return state.quarantined or original(state)

    h.supervisor.chunk_proven = proven_after_quarantine
    h.run()
    assert h.states[0].outcome == "skipped"
    assert h.inline_runs == []


def test_backoff_is_respected_between_requeues():
    policy = RetryPolicy(max_attempts=3, backoff=0.15, backoff_factor=1.0, jitter=0.0)
    h = _Harness(1, {(0, 0): "raise", (0, 1): "raise"}, policy=policy)
    begin = time.monotonic()
    h.run()
    elapsed = time.monotonic() - begin
    assert h.states[0].outcome == "completed"
    assert h.states[0].attempts == 3
    assert elapsed >= 0.3  # two requeues x 0.15s backoff each
