"""Tests for elaboration: flattening, parameters, lowering integration."""

import pytest

from repro.api import compile_design
from repro.errors import ElaborationError, UnsupportedConstructError
from repro.ir.behavioral import EdgeKind
from repro.ir.signal import SignalKind


def test_counter_elaborates(counter_design):
    design = counter_design
    assert design.name == "counter"
    assert {s.name for s in design.inputs} == {"clk", "rst", "en", "load", "din"}
    assert {s.name for s in design.outputs} == {"count", "carry"}
    assert design.is_finalized


def test_port_kinds_top_level(counter_design):
    assert counter_design.signal("clk").kind is SignalKind.INPUT
    assert counter_design.signal("count").kind is SignalKind.OUTPUT


def test_widths_and_ranges(counter_design):
    assert counter_design.signal("din").width == 4
    assert counter_design.signal("carry").width == 1


def test_behavioral_node_sensitivity(counter_design):
    node = counter_design.behavioral_nodes[0]
    assert node.is_clocked
    assert node.edges[0].kind is EdgeKind.POSEDGE
    assert node.edges[0].signal.name == "clk"


def test_comb_always_block_not_clocked(mux_design):
    kinds = {node.is_clocked for node in mux_design.behavioral_nodes}
    assert kinds == {True, False}


def test_reads_and_writes_sets(counter_design):
    node = counter_design.behavioral_nodes[0]
    read_names = {s.name for s in node.reads}
    write_names = {s.name for s in node.writes}
    assert {"rst", "load", "en", "din", "next_value"} <= read_names
    assert write_names == {"count"}


def test_memory_declaration(memory_design):
    mem = memory_design.signal("mem")
    assert mem.is_memory
    assert mem.depth == 8
    assert mem.width == 8


def test_hierarchy_flattening(hierarchy_design):
    names = set(hierarchy_design.signal_by_name)
    assert "u_add.x" in names
    assert "u_add.s" in names
    assert hierarchy_design.signal("u_add.x").width == 8  # parameter override applied


def test_hierarchy_port_wiring(hierarchy_design):
    # input ports of the child are driven by RTL (buffer/assign) nodes
    child_in = hierarchy_design.signal("u_add.x")
    assert child_in in hierarchy_design.driver
    parent = hierarchy_design.signal("partial")
    assert parent in hierarchy_design.driver


def test_parameter_default_used_without_override():
    source = """
    module child #(parameter W = 4) (input [W-1:0] a, output wire [W-1:0] y);
      assign y = a;
    endmodule
    module top(input [3:0] a, output wire [3:0] y);
      child u0 (.a(a), .y(y));
    endmodule
    """
    design = compile_design(source, top="top")
    assert design.signal("u0.a").width == 4


def test_unknown_parameter_override_raises():
    source = """
    module child (input a, output wire y); assign y = a; endmodule
    module top(input a, output wire y);
      child #(.NOPE(1)) u0 (.a(a), .y(y));
    endmodule
    """
    with pytest.raises(ElaborationError):
        compile_design(source, top="top")


def test_unknown_module_raises():
    source = "module top(input a); ghost u0 (.x(a)); endmodule"
    with pytest.raises(ElaborationError):
        compile_design(source, top="top")


def test_unknown_signal_raises():
    source = "module top(input a, output wire y); assign y = b; endmodule"
    with pytest.raises(ElaborationError):
        compile_design(source, top="top")


def test_unknown_top_raises():
    with pytest.raises(ElaborationError):
        compile_design("module a; endmodule", top="missing")


def test_duplicate_declaration_raises():
    source = "module top(input a); wire x; wire x; endmodule"
    with pytest.raises(ElaborationError):
        compile_design(source, top="top")


def test_localparam_constant_folding():
    source = """
    module top(input [7:0] a, output wire [7:0] y);
      localparam SHIFT = 2 + 1;
      assign y = a << SHIFT;
    endmodule
    """
    design = compile_design(source, top="top")
    assert design.rtl_nodes  # folded without error


def test_concat_lvalue_rejected():
    source = """
    module top(input clk, input [7:0] a, output reg [3:0] hi, output reg [3:0] lo);
      always @(posedge clk) {hi, lo} <= a;
    endmodule
    """
    with pytest.raises(UnsupportedConstructError):
        compile_design(source, top="top")


def test_assign_to_slice_rejected():
    source = """
    module top(input [7:0] a, output wire [7:0] y);
      assign y[3:0] = a[3:0];
    endmodule
    """
    with pytest.raises(UnsupportedConstructError):
        compile_design(source, top="top")


def test_single_driver_enforced():
    source = """
    module top(input a, input b, output wire y);
      assign y = a;
      assign y = b;
    endmodule
    """
    with pytest.raises(ElaborationError):
        compile_design(source, top="top")


def test_unconnected_input_tied_to_zero():
    source = """
    module child(input x, output wire y); assign y = x; endmodule
    module top(output wire y);
      child u0 (.x(), .y(y));
    endmodule
    """
    design = compile_design(source, top="top")
    driver = design.driver[design.signal("u0.x")]
    assert driver.category == "wiring"


def test_design_summary_counts(counter_design):
    summary = counter_design.summary()
    assert summary["rtl_nodes"] == len(counter_design.rtl_nodes)
    assert summary["behavioral_nodes"] == 1
    assert summary["cells"] == counter_design.num_cells


def test_output_port_connection_must_be_simple():
    source = """
    module child(input x, output wire y); assign y = x; endmodule
    module top(input a, output wire [1:0] z);
      child u0 (.x(a), .y(z[0]));
    endmodule
    """
    with pytest.raises(UnsupportedConstructError):
        compile_design(source, top="top")
