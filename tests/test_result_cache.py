"""Tests for the persistent campaign result cache (repro.sim.result_cache).

The acceptance bar has three layers.  The unit layer pins the store itself:
content-addressed layout, verdict round-trips including proven-*undetected*
(``null``) entries, read-merge-replace atomicity with no temp-file litter,
corruption reading as a cold cache, and age/size garbage collection.  The
key layer pins :func:`stimulus_hash`: the same stimulus built through every
:class:`WorkloadSpec` mode (registry benchmark, raw Verilog source, pickled
design) hashes identically, while any change to a vector, the clock or the
cycle count re-keys.  The campaign layer is the reason the cache exists: on
all ten corpus benchmarks a warm replay resolves every verdict from the
cache with **zero chunks scheduled** and verdicts + detection cycles
byte-identical to the cold run; a superset campaign simulates only the
delta; a changed design, stimulus or fault never hits; and the plumbing
(``ParallelFaultSimulator``, ``prepare_workload``, the harness CLI flags,
``tools/result_cache_ctl.py``) threads the knobs end to end.
"""

import json
import os
import pickle

import pytest

from fixture_designs import COUNTER_SRC
from repro.api import compile_design
from repro.baselines.base import SerialFaultSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.errors import SimulationError, UnknownOptionError
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.harness.experiments import prepare_workload
from repro.sim.codegen import design_fingerprint
from repro.sim.parallel import ParallelFaultSimulator, WorkloadSpec, run_multiprocess
from repro.sim.result_cache import (
    CACHE_VERSION,
    ResultCache,
    cache_dir,
    stimulus_hash,
)
from repro.sim.stimulus import VectorStimulus

#: Cycles per benchmark for the corpus sweep; enough for observable activity.
PARITY_CYCLES = 30

#: Fault sample per benchmark (deliberately not a multiple of the word width).
PARITY_FAULTS = 10


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    """Keep every test (and its spawned workers) off the real user caches."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "result-cache"))


_workloads = {}


def _workload(name):
    """Compile each benchmark once per session, with its serial reference."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=PARITY_CYCLES)
        faults = sample_faults(
            generate_stuck_at_faults(design), PARITY_FAULTS, seed=7
        )
        reference = SerialFaultSimulator(design, engine="codegen").run(
            stimulus, faults
        )
        _workloads[name] = (design, stimulus, faults, reference)
    return _workloads[name]


# ---------------------------------------------------------- the stimulus hash
def test_stimulus_hash_stable_across_workload_spec_modes():
    """One stimulus, three build paths, one hash.

    The hash must capture what the design *sees* (clock + per-cycle
    vectors), not how the stimulus object was constructed — a registry
    benchmark stimulus and its vector-flattened WorkloadSpec round-trips in
    every design mode must key the same cache shard.
    """
    spec = get_benchmark("alu")
    design = spec.compile()
    stimulus = spec.stimulus(cycles=PARITY_CYCLES)
    expected = stimulus_hash(stimulus)
    specs = [
        WorkloadSpec.from_benchmark("alu"),
        WorkloadSpec.from_source(spec.read_source(), spec.top),
        WorkloadSpec(design_blob=pickle.dumps(design)),
    ]
    for workload_spec in specs:
        rebuilt_design, rebuilt_stimulus = workload_spec.with_stimulus(
            stimulus
        ).build()
        assert stimulus_hash(rebuilt_stimulus) == expected
        assert design_fingerprint(rebuilt_design) == design_fingerprint(design)


def test_stimulus_hash_changes_on_vector_clock_or_cycle_count():
    base = VectorStimulus([{"a": 1, "clk": 0}, {"a": 2, "clk": 0}], clock="clk")
    changed_vector = VectorStimulus(
        [{"a": 1, "clk": 0}, {"a": 3, "clk": 0}], clock="clk"
    )
    changed_clock = VectorStimulus(
        [{"a": 1, "clk": 0}, {"a": 2, "clk": 0}], clock="a"
    )
    truncated = VectorStimulus([{"a": 1, "clk": 0}], clock="clk")
    hashes = [
        stimulus_hash(s) for s in (base, changed_vector, changed_clock, truncated)
    ]
    assert len(set(hashes)) == len(hashes)
    # and the base is reproducible, not time- or identity-dependent
    assert stimulus_hash(base) == hashes[0]


# ------------------------------------------------------------- the store unit
FP = "ab" * 32
SH = "cd" * 32


def test_round_trip_including_undetected(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    verdicts = {"f0 stuck-at-1": 7, "f1 stuck-at-0": None}
    assert cache.store(FP, SH, verdicts, design_name="alu", clock="clk", cycles=30)
    assert cache.load(FP, SH) == verdicts
    # lookup filters to the asked-for names, keeping null verdicts
    assert cache.lookup(FP, SH, ["f1 stuck-at-0", "missing"]) == {
        "f1 stuck-at-0": None
    }


def test_store_merges_and_leaves_no_temp_files(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    cache.store(FP, SH, {"a": 1})
    cache.store(FP, SH, {"b": None})
    cache.store(FP, SH, {"a": 1})  # overlap rewrites the same value
    assert cache.load(FP, SH) == {"a": 1, "b": None}
    shard_dir = os.path.dirname(cache.entry_path(FP, SH))
    assert sorted(os.listdir(shard_dir)) == [f"{SH}.json"]


def test_corrupt_or_mismatched_shard_reads_as_cold(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    path = cache.entry_path(FP, SH)
    os.makedirs(os.path.dirname(path))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json{")
    assert cache.load(FP, SH) == {}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": CACHE_VERSION + 1, "verdicts": {"a": 1}}, handle)
    assert cache.load(FP, SH) == {}
    # non-integer verdict values are filtered rather than propagated
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": CACHE_VERSION, "verdicts": {"a": "soon", "b": 2}}, handle)
    assert cache.load(FP, SH) == {"b": 2}


def test_keys_must_be_hex_digests(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    for bad in ("../evil", "", "UPPER", "zz"):
        with pytest.raises(SimulationError):
            cache.entry_path(bad, SH)
        with pytest.raises(SimulationError):
            cache.entry_path(FP, bad)


def test_coerce():
    assert ResultCache.coerce(None) is None
    default = ResultCache.coerce(True)
    assert default.root == os.path.abspath(cache_dir())
    by_path = ResultCache.coerce("/tmp/some-cache")
    assert by_path.root == os.path.abspath("/tmp/some-cache")
    instance = ResultCache("/tmp/other")
    assert ResultCache.coerce(instance) is instance
    with pytest.raises(SimulationError):
        ResultCache.coerce(3)


def test_entries_and_status(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    assert cache.entries() == []
    assert cache.status()["entries"] == 0
    cache.store(FP, SH, {"a": 1, "b": None}, design_name="alu", cycles=30)
    cache.store("ef" * 32, SH, {"c": 2}, design_name="fpu", cycles=30)
    entries = cache.entries()
    assert [e.design_name for e in entries] == ["alu", "fpu"] or [
        e.design_name for e in entries
    ] == ["fpu", "alu"]
    status = cache.status()
    assert status["entries"] == 2
    assert status["designs"] == 2
    assert status["faults"] == 3
    assert status["detected"] == 2
    assert status["size_bytes"] > 0


def test_gc_by_age_then_size(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    cache.store(FP, SH, {"a": 1})
    cache.store("ef" * 32, SH, {"b": 2})
    cache.store("01" * 32, SH, {"c": 3})
    now = 1_000_000.0
    old, mid, new = [entry.path for entry in cache.entries()]
    os.utime(old, (now - 10 * 86400, now - 10 * 86400))
    os.utime(mid, (now - 2 * 86400, now - 2 * 86400))
    os.utime(new, (now - 3600, now - 3600))
    removed = cache.gc(max_age_days=5, now=now)
    assert [entry.path for entry in removed] == [old]
    assert not os.path.exists(os.path.dirname(old))  # empty fingerprint pruned
    # size eviction goes oldest-first until the budget fits; 0 clears the rest
    removed = cache.gc(max_size_mb=0, now=now)
    assert [entry.path for entry in removed] == [mid, new]
    assert cache.entries() == []


# ------------------------------------------------------- campaigns, ten-fold
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_warm_replay_reads_everything_from_cache_on_corpus(name, tmp_path):
    """Cold populates; the warm replay schedules zero chunks, verdicts exact.

    This is the acceptance sweep: on every corpus benchmark the second run
    of the identical campaign must resolve *every* fault (detected and
    undetected) from the cache, with verdicts and detection cycles
    byte-identical to both the cold run and the serial codegen reference.
    """
    design, stimulus, faults, reference = _workload(name)
    root = str(tmp_path / "results")
    cold = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root
    )
    assert cold.stats.cache_hits == 0
    assert cold.stats.cache_misses == len(faults)
    assert cold.stats.cache_writes == len(faults)
    assert cold.coverage.same_verdicts(reference.coverage)

    warm = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root
    )
    assert warm.stats.chunks_simulated == 0
    assert warm.stats.cache_hits == len(faults)
    assert warm.stats.cache_misses == 0
    assert warm.stats.cache_writes == 0
    assert warm.coverage.same_verdicts(cold.coverage), (
        f"{name}: warm replay disagrees on "
        f"{warm.coverage.disagreements(cold.coverage)}"
    )
    assert warm.coverage.detections == reference.coverage.detections


def test_shard_records_detected_cycles_and_undetected_nulls(tmp_path):
    design, stimulus, faults, reference = _workload("alu")
    root = str(tmp_path / "results")
    run_multiprocess(design, stimulus, faults, workers=1, width=8, cache=root)
    cache = ResultCache(root)
    verdicts = cache.load(design_fingerprint(design), stimulus_hash(stimulus))
    assert set(verdicts) == {fault.name for fault in faults}
    for fault in faults:
        expected = reference.coverage.detections.get(fault.name)
        assert verdicts[fault.name] == expected


def test_superset_campaign_simulates_only_the_delta(tmp_path):
    design, stimulus, faults, reference = _workload("apb")
    root = str(tmp_path / "results")
    subset = faults[: len(faults) - 4]
    run_multiprocess(design, stimulus, subset, workers=1, width=8, cache=root)

    superset = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root
    )
    assert superset.stats.cache_hits == len(subset)
    assert superset.stats.cache_misses == len(faults) - len(subset)
    assert superset.stats.cache_writes == len(faults) - len(subset)
    assert superset.coverage.same_verdicts(reference.coverage)
    # and now the whole list is warm
    warm = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root
    )
    assert warm.stats.cache_hits == len(faults)
    assert warm.stats.chunks_simulated == 0


def test_changed_design_or_stimulus_never_hits(tmp_path):
    spec = get_benchmark("alu")
    design = spec.compile()
    stimulus = spec.stimulus(cycles=PARITY_CYCLES)
    faults = sample_faults(generate_stuck_at_faults(design), 6, seed=7)
    root = str(tmp_path / "results")
    run_multiprocess(design, stimulus, faults, workers=1, width=8, cache=root)

    # same benchmark, different stimulus (different seed) — no hits
    other_stimulus = spec.stimulus(cycles=PARITY_CYCLES, seed=1)
    assert stimulus_hash(other_stimulus) != stimulus_hash(stimulus)
    result = run_multiprocess(
        design, other_stimulus, faults, workers=1, width=8, cache=root
    )
    assert result.stats.cache_hits == 0

    # a textually different design — no hits, even for same-named faults
    changed = compile_design(COUNTER_SRC, top="counter")
    assert design_fingerprint(changed) != design_fingerprint(design)
    changed_faults = sample_faults(generate_stuck_at_faults(changed), 4, seed=7)
    counter_stimulus = VectorStimulus(
        [{"clk": 0, "rst": 1 if cycle < 2 else 0, "en": 1} for cycle in range(10)],
        clock="clk",
    )
    result = run_multiprocess(
        changed, counter_stimulus, changed_faults, workers=1, width=8, cache=root
    )
    assert result.stats.cache_hits == 0

    # a fault never campaigned stays a miss even with the shard warm
    fresh = sample_faults(generate_stuck_at_faults(design), 8, seed=11)
    new_names = {f.name for f in fresh} - {f.name for f in faults}
    result = run_multiprocess(
        design, stimulus, fresh, workers=1, width=8, cache=root
    )
    assert result.stats.cache_misses == len(new_names)


def test_cache_mode_read_and_off(tmp_path):
    design, stimulus, faults, reference = _workload("alu")
    root = str(tmp_path / "results")

    # read mode on an empty cache: misses everything, writes nothing
    result = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root, cache_mode="read"
    )
    assert result.stats.cache_misses == len(faults)
    assert result.stats.cache_writes == 0
    assert ResultCache(root).entries() == []

    # populate, then read mode serves hits without touching the shard
    run_multiprocess(design, stimulus, faults, workers=1, width=8, cache=root)
    [entry] = ResultCache(root).entries()
    result = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root, cache_mode="read"
    )
    assert result.stats.cache_hits == len(faults)
    assert result.coverage.same_verdicts(reference.coverage)

    # off mode ignores a configured, fully-warm cache
    result = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root, cache_mode="off"
    )
    assert result.stats.cache_hits == 0
    assert result.stats.cache_misses == 0
    assert result.stats.chunks_simulated > 0


def test_unknown_cache_mode_and_bad_cache_value():
    design, stimulus, faults, _ = _workload("alu")
    with pytest.raises(UnknownOptionError) as excinfo:
        run_multiprocess(
            design, stimulus, faults, workers=1, cache=True, cache_mode="write"
        )
    assert "cache_mode" in str(excinfo.value)
    with pytest.raises(SimulationError):
        run_multiprocess(design, stimulus, faults, workers=1, cache=3)


def test_partial_campaign_caches_detected_verdicts_only(tmp_path):
    """A salvaged campaign must not record 'never simulated' as 'undetected'."""
    design, stimulus, faults, reference = _workload("apb")
    root = str(tmp_path / "results")
    result = run_multiprocess(
        design,
        stimulus,
        faults,
        workers=2,
        width=4,
        cache=root,
        chaos="raise:chunk=0",
        retries=0,
        degrade=False,
        salvage=True,
    )
    assert result.partial
    verdicts = ResultCache(root).load(
        design_fingerprint(design), stimulus_hash(stimulus)
    )
    assert verdicts  # the surviving chunks' detections were persisted...
    assert all(cycle is not None for cycle in verdicts.values())  # ...nulls not
    for name, cycle in verdicts.items():
        assert reference.coverage.detections[name] == cycle
    assert result.stats.cache_writes == len(verdicts)


def test_resume_from_composes_with_the_cache(tmp_path):
    design, stimulus, faults, reference = _workload("alu")
    root = str(tmp_path / "results")
    subset = faults[:4]
    run_multiprocess(design, stimulus, subset, workers=1, width=8, cache=root)
    # seeds naming cached faults are dropped; seeds for the delta still apply
    seeds = {
        name: cycle
        for name, cycle in reference.coverage.detections.items()
        if cycle is not None
    }
    result = run_multiprocess(
        design, stimulus, faults, workers=1, width=8, cache=root, resume_from=seeds
    )
    assert result.stats.cache_hits == len(subset)
    assert result.coverage.same_verdicts(reference.coverage)
    with pytest.raises(SimulationError):
        run_multiprocess(
            design,
            stimulus,
            faults,
            workers=1,
            width=8,
            cache=root,
            resume_from={"no such fault": 3},
        )


# ------------------------------------------------------------------- plumbing
def test_parallel_fault_simulator_forwards_cache(tmp_path):
    design, stimulus, faults, reference = _workload("alu")
    root = str(tmp_path / "results")
    sim = ParallelFaultSimulator(design, workers=1, width=8, cache=root)
    cold = sim.run(stimulus, faults)
    warm = sim.run(stimulus, faults)
    assert warm.stats.chunks_simulated == 0
    assert warm.stats.cache_hits == len(faults)
    assert warm.coverage.same_verdicts(cold.coverage)
    assert warm.coverage.same_verdicts(reference.coverage)


@pytest.mark.parametrize("executor", ["process", "serial"])
def test_prepare_workload_threads_cache_through_run_faults(executor, tmp_path):
    root = str(tmp_path / "results")
    workload = prepare_workload(
        "alu",
        cycles=PARITY_CYCLES,
        fault_count=PARITY_FAULTS,
        executor=executor,
        workers=1,
        cache=root,
        cache_mode="readwrite",
    )
    cold = workload.run_faults(width=8)
    warm = workload.run_faults(width=8)
    assert warm.stats.cache_hits == len(workload.faults)
    assert warm.stats.chunks_simulated == 0
    assert warm.coverage.same_verdicts(cold.coverage)


def test_cli_flags_install_cache_defaults(tmp_path):
    import repro.sim.parallel as parallel_mod
    from repro.harness.__main__ import _install_campaign_defaults, build_parser

    root = str(tmp_path / "results")
    args = build_parser().parse_args(
        ["table2", "--cache", root, "--cache-mode", "read"]
    )
    try:
        _install_campaign_defaults(args)
        defaults = parallel_mod._CAMPAIGN_DEFAULTS
        assert defaults["cache"] == root
        assert defaults["cache_mode"] == "read"
        # the sentinel value routes to the default directory
        args = build_parser().parse_args(["table2", "--cache", "default"])
        _install_campaign_defaults(args)
        assert parallel_mod._CAMPAIGN_DEFAULTS["cache"] is True
    finally:
        parallel_mod.set_campaign_defaults(cache=None, cache_mode=None)
    assert "cache" not in parallel_mod._CAMPAIGN_DEFAULTS


def test_result_cache_ctl_cli(tmp_path, capsys):
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
    try:
        import result_cache_ctl
    finally:
        sys.path.pop(0)

    root = str(tmp_path / "results")
    cache = ResultCache(root)
    cache.store(FP, SH, {"a": 1, "b": None}, design_name="alu", cycles=30)
    cache.store("ef" * 32, SH, {"c": 4}, design_name="fpu", cycles=30)

    assert result_cache_ctl.main(["--cache", root, "status"]) == 0
    out = capsys.readouterr().out
    assert "2 shard(s) across 2 design(s)" in out
    assert "3 fault(s), 2 detected" in out

    assert result_cache_ctl.main(["--cache", root, "ls"]) == 0
    out = capsys.readouterr().out
    assert "alu" in out and "fpu" in out

    # gc without bounds is a usage error
    assert result_cache_ctl.main(["--cache", root, "gc"]) == 2
    capsys.readouterr()

    # dry-run plans but does not delete; the real gc removes everything
    assert (
        result_cache_ctl.main(["--cache", root, "gc", "--max-size-mb", "0", "--dry-run"])
        == 0
    )
    assert "would evict 2 shard(s)" in capsys.readouterr().out
    assert len(cache.entries()) == 2
    assert result_cache_ctl.main(["--cache", root, "gc", "--max-size-mb", "0"]) == 0
    assert "evicted 2 shard(s)" in capsys.readouterr().out
    assert cache.entries() == []
