"""Tests for the Eraser concurrent fault-simulation framework."""

import pytest

from repro.api import compile_design
from repro.baselines.ifsim import IFsimSimulator
from repro.core.framework import EraserMode, EraserSimulator
from repro.fault.faultlist import FaultList, faults_on_signals, generate_stuck_at_faults
from repro.fault.model import StuckAtFault
from repro.sim.stimulus import VectorStimulus
from fixture_designs import COUNTER_SRC


BASE = {"rst": 0, "en": 1, "load": 0, "din": 0}


def counter_vectors(extra=6):
    return [dict(BASE, rst=1)] + [dict(BASE) for _ in range(extra)]


def run_counter(design, vectors, faults, mode=EraserMode.FULL):
    stim = VectorStimulus(vectors, clock="clk")
    return EraserSimulator(design, mode=mode).run(stim, faults)


def test_all_modes_agree_with_serial_reference(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    reference = IFsimSimulator(counter_design).run(counter_stimulus, faults)
    for mode in EraserMode:
        result = EraserSimulator(counter_design, mode=mode).run(counter_stimulus, faults)
        assert result.coverage.same_verdicts(reference.coverage), mode
        assert result.fault_coverage == pytest.approx(reference.fault_coverage)


def test_simulator_names():
    src_design = compile_design(COUNTER_SRC, top="counter")
    assert EraserSimulator(src_design).simulator_name == "Eraser"
    assert (
        EraserSimulator(src_design, mode=EraserMode.EXPLICIT_ONLY).simulator_name
        == "Eraser-"
    )
    assert (
        EraserSimulator(src_design, mode=EraserMode.NO_ELIMINATION).simulator_name
        == "Eraser--"
    )


def test_stuck_at_output_detected_immediately(counter_design):
    count = counter_design.signal("count")
    faults = FaultList([StuckAtFault(count, 0, 1)])
    result = run_counter(counter_design, counter_vectors(), faults)
    # count counts 0,1,2,... so bit0 stuck at 1 shows on the first even value
    assert result.fault_coverage == 100.0
    assert result.coverage.detections[faults[0].name] <= 1


def test_undetectable_fault_reported_undetected(counter_design):
    # stuck-at-1 on en while the stimulus always drives en=1: never observable
    en = counter_design.signal("en")
    faults = FaultList([StuckAtFault(en, 0, 1)])
    result = run_counter(counter_design, counter_vectors(), faults)
    assert result.fault_coverage == 0.0


def test_fault_on_stuck_enable_detected(counter_design):
    # stuck-at-0 on en freezes the counter: must be detected once count moves
    en = counter_design.signal("en")
    faults = FaultList([StuckAtFault(en, 0, 0)])
    result = run_counter(counter_design, counter_vectors(), faults)
    assert result.fault_coverage == 100.0


def test_fault_on_clock_handled(counter_design):
    clk = counter_design.signal("clk")
    faults = FaultList([StuckAtFault(clk, 0, 0), StuckAtFault(clk, 0, 1)])
    stim = VectorStimulus(counter_vectors(), clock="clk")
    result = EraserSimulator(counter_design).run(stim, faults)
    reference = IFsimSimulator(counter_design).run(stim, faults)
    assert result.coverage.same_verdicts(reference.coverage)
    # a stuck clock freezes the counter, which differs from the good machine
    assert result.coverage.is_detected("clk[0]:SA0")


def test_detected_faults_are_dropped(counter_design):
    faults = faults_on_signals(generate_stuck_at_faults(counter_design), ["count"])
    simulator = EraserSimulator(counter_design)
    result = simulator.run(VectorStimulus(counter_vectors(10), clock="clk"), faults)
    assert result.fault_coverage == 100.0
    assert not simulator.live  # every detected fault left the live set


def test_statistics_consistency(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    result = EraserSimulator(counter_design).run(counter_stimulus, faults)
    stats = result.stats
    assert stats.cycles == counter_stimulus.num_cycles()
    assert stats.bn_good_executions >= stats.cycles - 2
    accounted = (
        stats.bn_explicit_eliminations
        + stats.bn_implicit_eliminations
        + stats.bn_fault_executions
    )
    assert accounted <= stats.bn_potential_executions + stats.bn_fault_only_executions
    assert 0.0 <= stats.explicit_fraction <= 100.0
    assert 0.0 <= stats.implicit_fraction <= 100.0
    assert stats.time_total > 0.0
    assert stats.time_behavioral <= stats.time_total


def test_modes_differ_in_eliminations(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    full = EraserSimulator(counter_design, mode=EraserMode.FULL).run(
        counter_stimulus, faults
    )
    explicit = EraserSimulator(counter_design, mode=EraserMode.EXPLICIT_ONLY).run(
        counter_stimulus, faults
    )
    none = EraserSimulator(counter_design, mode=EraserMode.NO_ELIMINATION).run(
        counter_stimulus, faults
    )
    assert none.stats.bn_eliminations == 0
    assert explicit.stats.bn_implicit_eliminations == 0
    assert explicit.stats.bn_explicit_eliminations > 0
    assert full.stats.bn_implicit_eliminations > 0
    # every elimination saves a faulty execution
    assert full.stats.bn_fault_executions <= explicit.stats.bn_fault_executions
    assert explicit.stats.bn_fault_executions <= none.stats.bn_fault_executions


def test_mode_flags():
    assert EraserMode.FULL.eliminates_explicit and EraserMode.FULL.eliminates_implicit
    assert EraserMode.EXPLICIT_ONLY.eliminates_explicit
    assert not EraserMode.EXPLICIT_ONLY.eliminates_implicit
    assert not EraserMode.NO_ELIMINATION.eliminates_explicit


def test_result_speedup_helper(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design, max_bits_per_signal=1)
    fast = EraserSimulator(counter_design).run(counter_stimulus, faults)
    slow = IFsimSimulator(counter_design).run(counter_stimulus, faults)
    assert slow.speedup_over(fast) > 0
    assert fast.speedup_over(slow) == pytest.approx(
        slow.wall_time / fast.wall_time
    )


def test_rerunning_simulator_is_reproducible(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    a = EraserSimulator(counter_design).run(counter_stimulus, faults)
    b = EraserSimulator(counter_design).run(counter_stimulus, faults)
    assert a.coverage.same_verdicts(b.coverage)


def test_memory_design_parity(memory_design, memory_stimulus):
    faults = generate_stuck_at_faults(memory_design)
    concurrent = EraserSimulator(memory_design).run(memory_stimulus, faults)
    serial = IFsimSimulator(memory_design).run(memory_stimulus, faults)
    assert concurrent.coverage.same_verdicts(serial.coverage)


def test_comb_block_design_parity(mux_design, mux_stimulus):
    faults = generate_stuck_at_faults(mux_design)
    concurrent = EraserSimulator(mux_design).run(mux_stimulus, faults)
    serial = IFsimSimulator(mux_design).run(mux_stimulus, faults)
    assert concurrent.coverage.same_verdicts(serial.coverage)


def test_fsm_design_parity(fsm_design, fsm_stimulus):
    faults = generate_stuck_at_faults(fsm_design)
    concurrent = EraserSimulator(fsm_design).run(fsm_stimulus, faults)
    serial = IFsimSimulator(fsm_design).run(fsm_stimulus, faults)
    assert concurrent.coverage.same_verdicts(serial.coverage)


def test_hierarchy_design_parity(hierarchy_design):
    faults = generate_stuck_at_faults(hierarchy_design)
    vectors = [{"rst": 1, "a": 0, "b": 0}] + [
        {"rst": 0, "a": (17 * i) & 0xFF, "b": (5 * i + 3) & 0xFF} for i in range(20)
    ]
    stim = VectorStimulus(vectors, clock="clk")
    concurrent = EraserSimulator(hierarchy_design).run(stim, faults)
    serial = IFsimSimulator(hierarchy_design).run(stim, faults)
    assert concurrent.coverage.same_verdicts(serial.coverage)


def test_unfinalized_design_rejected():
    from repro.ir.design import Design
    from repro.ir.signal import Signal, SignalKind
    from repro.errors import SimulationError

    design = Design("raw")
    design.add_signal(Signal("a", 1, SignalKind.INPUT))
    with pytest.raises(SimulationError):
        EraserSimulator(design)
