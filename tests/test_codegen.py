"""Tests for the code-generating kernel: parity, caching, selection seams.

The strongest check is the full-corpus sweep: every one of the ten benchmark
designs must produce cycle-exact identical output traces on the event-driven,
compiled and codegen engines.  The cache tests pin the on-disk round-trip
(second construction loads the generated source from disk and still matches),
and the seam tests cover the ``engine=`` selector in the API, the registry,
the serial baselines and the sharded runner.
"""

import pytest
from hypothesis import given, settings, strategies as st

from fixture_designs import COUNTER_SRC, MUX_PIPELINE_SRC
from repro.api import ENGINES, compile_design, make_engine, simulate_good
from repro.baselines.ifsim import IFsimSimulator
from repro.baselines.vfsim import VFsimSimulator
from repro.designs.registry import BENCHMARK_NAMES, get_benchmark
from repro.errors import SimulationError
from repro.fault.faultlist import generate_stuck_at_faults, sample_faults
from repro.sim.codegen import CodegenEngine, design_fingerprint, generate_source
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import EventDrivenEngine
from repro.sim.kernel import SimulationKernel, run_sharded
from repro.sim.stimulus import RandomStimulus, VectorStimulus

#: Cycles per benchmark for the corpus sweep — enough for every design to
#: produce observable output activity while keeping the sweep fast.
PARITY_CYCLES = 60


@pytest.fixture(autouse=True)
def _isolated_codegen_cache(tmp_path, monkeypatch):
    """Keep every test away from the developer's real ~/.cache/repro-codegen."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "codegen-cache"))

_workloads = {}


def _workload(name):
    """Compile each benchmark once per test session (with its event trace)."""
    if name not in _workloads:
        spec = get_benchmark(name)
        design = spec.compile()
        stimulus = spec.stimulus(cycles=PARITY_CYCLES)
        reference = EventDrivenEngine(design).run(stimulus)
        _workloads[name] = (design, stimulus, reference)
    return _workloads[name]


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("engine", ["event", "compiled", "codegen"])
def test_engine_parity_on_corpus(name, engine):
    """All ten corpus benchmarks x all three engines: identical traces."""
    design, stimulus, reference = _workload(name)
    if engine == "codegen":
        trace = CodegenEngine(design, use_cache=False).run(stimulus)
    else:
        trace = make_engine(design, engine).run(stimulus)
    assert trace == reference, (
        f"{engine} diverges from event-driven on {name} "
        f"at cycle {trace.first_difference(reference)}"
    )


@pytest.mark.parametrize("name", ["apb", "alu", "mips"])
def test_codegen_faulty_machine_parity(name):
    """The branch-on-mask forcing guard reproduces compiled faulty traces."""
    design, stimulus, _ = _workload(name)
    faults = sample_faults(generate_stuck_at_faults(design), 6, seed=23)
    for fault in faults:

        def hook(signal, value, fault=fault):
            return fault.force(value) if signal is fault.signal else value

        compiled = CompiledEngine(design, force_hook=hook).run(stimulus)
        codegen = CodegenEngine(design, force_hook=hook, use_cache=False).run(stimulus)
        assert compiled == codegen, fault.name


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_codegen_equivalent_on_random_stimuli(seed):
    design = compile_design(MUX_PIPELINE_SRC, top="mux_pipeline")
    stim = RandomStimulus(
        {"sel": 1, "a": 8, "b": 8, "c": 8},
        cycles=15,
        clock="clk",
        per_cycle=lambda c, v: dict(v, rst=1 if c < 1 else 0),
        seed=seed,
    )
    assert (
        EventDrivenEngine(design).run(stim)
        == CodegenEngine(design, use_cache=False).run(stim)
    )


# ------------------------------------------------------------------- the cache
def test_cache_round_trip(tmp_path, monkeypatch, counter_design, counter_stimulus):
    """Second construction hits the disk cache and still matches."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    first = CodegenEngine(counter_design)
    assert not first.cache_hit
    fingerprint = design_fingerprint(counter_design)
    cached = tmp_path / f"{fingerprint}.py"
    assert cached.exists()
    assert cached.read_text() == first.source

    second = CodegenEngine(counter_design)
    assert second.cache_hit
    assert second.source == first.source
    assert first.run(counter_stimulus) == second.run(counter_stimulus)


def test_cache_key_tracks_design_content(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    base = compile_design(COUNTER_SRC, top="counter")
    variant_src = COUNTER_SRC.replace("count + 1", "count + 2")
    variant = compile_design(variant_src, top="counter")
    assert design_fingerprint(base) != design_fingerprint(variant)
    CodegenEngine(base)
    CodegenEngine(variant)
    assert len(list(tmp_path.glob("*.py"))) == 2


def test_cache_disabled_writes_nothing(tmp_path, monkeypatch, counter_design):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    engine = CodegenEngine(counter_design, use_cache=False)
    assert not engine.cache_hit
    assert list(tmp_path.glob("*.py")) == []


def test_corrupt_cache_entry_regenerates(tmp_path, monkeypatch, counter_design,
                                         counter_stimulus):
    """A truncated/hand-edited cache file degrades to fresh generation."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    good = CodegenEngine(counter_design)
    path = tmp_path / f"{design_fingerprint(counter_design)}.py"
    path.write_text("def comb_pass(:  # truncated mid-write\n")
    recovered = CodegenEngine(counter_design)
    assert not recovered.cache_hit
    assert recovered.run(counter_stimulus) == good.run(counter_stimulus)


def test_generated_source_is_deterministic(counter_design):
    assert generate_source(counter_design) == generate_source(counter_design)


# --------------------------------------------------------- bytecode sidecar
def test_bytecode_sidecar_written_alongside_source(tmp_path, monkeypatch,
                                                   counter_design):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    CodegenEngine(counter_design)
    assert len(list(tmp_path.glob("*.py"))) == 1
    assert len(list(tmp_path.glob("*.bc"))) == 1


def test_bytecode_sidecar_round_trip(tmp_path, monkeypatch, counter_design,
                                     counter_stimulus):
    """A later process loads the marshalled code instead of compiling."""
    from repro.sim import codegen as codegen_mod

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    first = CodegenEngine(counter_design)
    codegen_mod._CODE_MEMO.clear()  # simulate a fresh process

    def fail_compile(*args, **kwargs):  # pragma: no cover - must not be hit
        raise AssertionError("sidecar hit expected; compile() was called")

    monkeypatch.setattr(codegen_mod, "compile", fail_compile, raising=False)
    second = CodegenEngine(counter_design)
    monkeypatch.undo()
    assert second.cache_hit
    assert first.run(counter_stimulus) == second.run(counter_stimulus)


def test_corrupt_bytecode_sidecar_recompiles(tmp_path, monkeypatch,
                                             counter_design, counter_stimulus):
    """A truncated sidecar silently falls back to compiling the source."""
    from repro.sim import codegen as codegen_mod

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    good = CodegenEngine(counter_design)
    sidecar = next(tmp_path.glob("*.bc"))
    sidecar.write_bytes(b"\x00garbage")
    codegen_mod._CODE_MEMO.clear()
    recovered = CodegenEngine(counter_design)
    assert recovered.cache_hit  # the source cache is still fine
    assert recovered.run(counter_stimulus) == good.run(counter_stimulus)
    # the sidecar was regenerated and is loadable again
    codegen_mod._CODE_MEMO.clear()
    CodegenEngine(counter_design)


def test_stale_bytecode_sidecar_ignored(tmp_path, monkeypatch, counter_design):
    """A sidecar whose digest does not match the source is not trusted."""
    import marshal

    from repro.sim import codegen as codegen_mod

    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
    CodegenEngine(counter_design)
    sidecar = next(tmp_path.glob("*.bc"))
    poison = compile("comb_pass = fire_clocked = lambda *a: False", "<p>", "exec")
    sidecar.write_bytes(marshal.dumps(("0" * 64, poison)))
    codegen_mod._CODE_MEMO.clear()
    engine = CodegenEngine(counter_design)
    # the poisoned code was rejected: a real kernel was compiled and runs
    assert engine.peek("count") == 0


# ------------------------------------------------------------- selection seams
def test_make_engine_selector(counter_design, counter_stimulus):
    traces = {
        name: simulate_good(counter_design, counter_stimulus, engine=name)
        for name in ENGINES
    }
    reference = traces["event"]
    assert all(trace == reference for trace in traces.values())


def test_make_engine_rejects_unknown_name(counter_design):
    with pytest.raises(SimulationError, match="unknown engine"):
        make_engine(counter_design, "verilator")


def test_codegen_satisfies_kernel_protocol(counter_design):
    assert isinstance(CodegenEngine(counter_design, use_cache=False), SimulationKernel)


def test_registry_spec_engine_selector(counter_design):
    spec = get_benchmark("alu")
    assert spec.default_engine == "codegen"
    assert isinstance(spec.make_engine(counter_design), CodegenEngine)
    event = spec.make_engine(counter_design, engine="event")
    assert isinstance(event, EventDrivenEngine)


def test_serial_baseline_engine_override():
    """A serial baseline re-run on the codegen kernel keeps its verdicts."""
    design, stimulus, _ = _workload("apb")
    faults = sample_faults(generate_stuck_at_faults(design), 15, seed=7)
    reference = IFsimSimulator(design).run(stimulus, faults)
    swapped = VFsimSimulator(design, engine="codegen").run(stimulus, faults)
    assert swapped.coverage.same_verdicts(reference.coverage)


def test_run_sharded_with_codegen_serial_factory():
    design, stimulus, _ = _workload("alu")
    faults = sample_faults(generate_stuck_at_faults(design), 12, seed=13)
    single = IFsimSimulator(design).run(stimulus, faults)
    sharded = run_sharded(
        design,
        stimulus,
        faults,
        workers=2,
        simulator_factory=lambda d: IFsimSimulator(d, engine="codegen"),
    )
    assert sharded.coverage.same_verdicts(single.coverage)


# ----------------------------------------------------------------- debug seams
def test_codegen_peek_and_memory(memory_design, memory_stimulus):
    engine = CodegenEngine(memory_design, use_cache=False)
    trace = engine.run(memory_stimulus)
    assert trace == EventDrivenEngine(memory_design).run(memory_stimulus)
    compiled = CompiledEngine(memory_design)
    compiled.run(memory_stimulus)
    assert engine.peek("rdata") == compiled.peek("rdata")
    for word in range(8):
        assert engine.peek_word("mem", word) == compiled.store.get_word(
            memory_design.signal("mem"), word
        )


def test_codegen_force_hook_on_fixture(counter_design):
    count = counter_design.signal("count")

    def hook(signal, value):
        return value | 1 if signal is count else value

    base = {"rst": 0, "en": 1, "load": 0, "din": 0}
    vectors = [dict(base, rst=1)] + [dict(base) for _ in range(3)]
    stim = VectorStimulus(vectors, clock="clk")
    trace = CodegenEngine(counter_design, force_hook=hook, use_cache=False).run(stim)
    assert all(cycle[0] & 1 for cycle in trace.cycles)
    assert trace == EventDrivenEngine(counter_design, force_hook=hook).run(stim)
