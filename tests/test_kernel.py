"""Tests for the shared cycle-driver kernel layer (repro.sim.kernel)."""


from repro.baselines.ifsim import IFsimSimulator
from repro.core.framework import EraserSimulator
from repro.fault.faultlist import generate_stuck_at_faults
from repro.sim.compiled import CompiledEngine
from repro.sim.engine import EventDrivenEngine
from repro.sim.kernel import CycleDriver, SimulationKernel, partition_faults, run_sharded


def test_every_simulator_implements_the_kernel_protocol(counter_design):
    for kernel in (
        EventDrivenEngine(counter_design),
        CompiledEngine(counter_design),
        EraserSimulator(counter_design),
    ):
        assert isinstance(kernel, SimulationKernel)
        for method in ("initialize", "apply_input", "settle", "observe"):
            assert callable(getattr(kernel, method)), method


def test_cycle_driver_runs_full_stimulus(counter_design, counter_stimulus):
    engine = EventDrivenEngine(counter_design)
    stopped_at = CycleDriver(engine, counter_stimulus).run()
    assert stopped_at is None  # ran to completion


def test_cycle_driver_observer_stops_early(counter_design, counter_stimulus):
    engine = EventDrivenEngine(counter_design)
    seen = []

    def observer(cycle):
        seen.append(cycle)
        return cycle == 7

    assert CycleDriver(engine, counter_stimulus).run(observer) == 7
    assert seen == list(range(8))


def test_cycle_driver_drives_eraser_simulator_directly(
    counter_design, counter_stimulus
):
    """The framework docstring advertises direct driving: initialize() must
    self-prepare (empty fault list) so the good machine can be advanced
    without going through run()."""
    simulator = EraserSimulator(counter_design)
    assert CycleDriver(simulator, counter_stimulus).run() is None
    assert simulator.stats.cycles == counter_stimulus.num_cycles()
    # the good machine actually advanced: the counter is not stuck at reset
    assert simulator.store.values[counter_design.signal("count")] != 0


def test_cycle_driver_gives_identical_traces_on_both_engines(
    counter_design, counter_stimulus
):
    event = EventDrivenEngine(counter_design).run(counter_stimulus)
    compiled = CompiledEngine(counter_design).run(counter_stimulus)
    assert event == compiled


def test_partition_faults_covers_every_fault_once(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    shards = partition_faults(faults, 3)
    assert len(shards) == 3
    names = [f.name for shard in shards for f in shard]
    assert sorted(names) == sorted(f.name for f in faults)
    # fault ids are re-assigned densely inside each shard
    for shard in shards:
        assert [f.fault_id for f in shard] == list(range(len(shard)))


def test_partition_faults_never_produces_empty_shards(counter_design):
    faults = generate_stuck_at_faults(counter_design)
    assert len(partition_faults(faults, 10_000)) == len(faults)


def test_run_sharded_matches_single_run(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    single = EraserSimulator(counter_design).run(counter_stimulus, faults)
    sharded = run_sharded(counter_design, counter_stimulus, faults, workers=3)
    assert sharded.coverage.same_verdicts(single.coverage)
    assert sharded.coverage.total_faults == len(faults)
    assert sharded.stats.cycles == 3 * single.stats.cycles


def test_run_sharded_matches_serial_reference(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    serial = IFsimSimulator(counter_design).run(counter_stimulus, faults)
    sharded = run_sharded(counter_design, counter_stimulus, faults, workers=4)
    assert sharded.coverage.same_verdicts(serial.coverage)


def test_run_sharded_single_worker_falls_through(counter_design, counter_stimulus):
    faults = generate_stuck_at_faults(counter_design)
    result = run_sharded(counter_design, counter_stimulus, faults, workers=1)
    single = EraserSimulator(counter_design).run(counter_stimulus, faults)
    assert result.coverage.same_verdicts(single.coverage)
