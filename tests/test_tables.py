"""Tests for the plain-text table renderer used by the harness."""

import pytest

from repro.utils.tables import TextTable, format_cell, format_seconds, format_speedup


def test_format_cell_float_and_str():
    assert format_cell(1.234) == "1.23"
    assert format_cell("abc") == "abc"
    assert format_cell(7) == "7"


def test_format_seconds():
    assert format_seconds(0.5) == "500ms"
    assert format_seconds(2.34) == "2.3s"
    assert format_seconds(150.0) == "150s"


def test_format_speedup():
    assert format_speedup(3.94) == "3.9x"
    assert format_speedup(1.0) == "1.0x"


def test_table_render_alignment():
    table = TextTable(["name", "value"], title="demo")
    table.add_row(["a", 1])
    table.add_row(["longer", 2.5])
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert len(lines) == 5


def test_table_row_width_mismatch():
    table = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_table_str_matches_render():
    table = TextTable(["x"])
    table.add_row([42])
    assert str(table) == table.render()
