"""Unit and property tests for the bit-vector helpers."""

from hypothesis import given, strategies as st

from repro.utils import bitvec


def test_mask_widths():
    assert bitvec.mask(0) == 0
    assert bitvec.mask(1) == 1
    assert bitvec.mask(8) == 0xFF
    assert bitvec.mask(64) == (1 << 64) - 1


def test_truncate():
    assert bitvec.truncate(0x1FF, 8) == 0xFF
    assert bitvec.truncate(-1, 4) == 0xF
    assert bitvec.truncate(5, 8) == 5


def test_to_signed():
    assert bitvec.to_signed(0xFF, 8) == -1
    assert bitvec.to_signed(0x7F, 8) == 127
    assert bitvec.to_signed(0x80, 8) == -128
    assert bitvec.to_signed(0, 8) == 0


def test_sign_extend():
    assert bitvec.sign_extend(0xF, 4, 8) == 0xFF
    assert bitvec.sign_extend(0x7, 4, 8) == 0x07


def test_get_set_bit():
    assert bitvec.get_bit(0b1010, 1) == 1
    assert bitvec.get_bit(0b1010, 0) == 0
    assert bitvec.set_bit(0, 3, 1) == 0b1000
    assert bitvec.set_bit(0b1111, 2, 0) == 0b1011


def test_get_set_slice():
    assert bitvec.get_slice(0xABCD, 15, 8) == 0xAB
    assert bitvec.get_slice(0xABCD, 7, 0) == 0xCD
    assert bitvec.set_slice(0x0000, 15, 8, 0xAB) == 0xAB00
    assert bitvec.set_slice(0xFFFF, 7, 4, 0x0) == 0xFF0F


def test_reductions():
    assert bitvec.reduce_or(0, 8) == 0
    assert bitvec.reduce_or(4, 8) == 1
    assert bitvec.reduce_and(0xFF, 8) == 1
    assert bitvec.reduce_and(0xFE, 8) == 0
    assert bitvec.reduce_xor(0b1011, 4) == 1
    assert bitvec.reduce_xor(0b0011, 4) == 0


def test_popcount():
    assert bitvec.popcount(0) == 0
    assert bitvec.popcount(0xFF) == 8
    assert bitvec.popcount(0b1010101) == 4


@given(st.integers(min_value=0), st.integers(min_value=1, max_value=128))
def test_truncate_idempotent(value, width):
    once = bitvec.truncate(value, width)
    assert bitvec.truncate(once, width) == once
    assert 0 <= once <= bitvec.mask(width)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1), st.integers(min_value=1, max_value=64))
def test_signed_roundtrip(value, width):
    value = bitvec.truncate(value, width)
    signed = bitvec.to_signed(value, width)
    assert bitvec.truncate(signed, width) == value
    assert -(1 << (width - 1)) <= signed < (1 << (width - 1))


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0),
)
def test_slice_roundtrip(value, hi, lo, patch):
    if hi < lo:
        hi, lo = lo, hi
    written = bitvec.set_slice(value, hi, lo, patch)
    assert bitvec.get_slice(written, hi, lo) == bitvec.truncate(patch, hi - lo + 1)


@given(st.integers(min_value=0, max_value=(1 << 16) - 1), st.integers(min_value=0, max_value=15))
def test_set_bit_then_get(value, bit):
    assert bitvec.get_bit(bitvec.set_bit(value, bit, 1), bit) == 1
    assert bitvec.get_bit(bitvec.set_bit(value, bit, 0), bit) == 0
