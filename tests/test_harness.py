"""Tests for the experiment harness (workloads, tables, figures, CLI)."""

import pytest

from repro.harness import environment, fig1b, fig6, fig7, table2, table3
from repro.harness.__main__ import build_parser, main
from repro.harness.experiments import (
    ABLATION_BENCHMARKS,
    FULL_PROFILE,
    QUICK_PROFILE,
    prepare_workload,
    prepare_workloads,
)
from repro.harness.paper_data import PAPER_FIG6_SPEEDUPS, PAPER_TABLE2_COVERAGE


def test_profiles_cover_all_benchmarks():
    from repro.designs.registry import BENCHMARK_NAMES

    for profile in (QUICK_PROFILE, FULL_PROFILE):
        assert set(profile.cycles) == set(BENCHMARK_NAMES)
        assert set(profile.fault_samples) == set(BENCHMARK_NAMES)
    assert set(ABLATION_BENCHMARKS) <= set(BENCHMARK_NAMES)


def test_paper_data_complete():
    from repro.designs.registry import BENCHMARK_NAMES

    assert set(PAPER_TABLE2_COVERAGE) == set(BENCHMARK_NAMES)
    assert set(PAPER_FIG6_SPEEDUPS) == set(BENCHMARK_NAMES)


def test_prepare_workload_is_deterministic():
    one = prepare_workload("alu", QUICK_PROFILE, cycles=20, fault_count=10)
    two = prepare_workload("alu", QUICK_PROFILE, cycles=20, fault_count=10)
    assert [f.name for f in one.faults] == [f.name for f in two.faults]
    assert one.stimulus.vector(5) == two.stimulus.vector(5)
    assert one.total_fault_population > len(one.faults)


def test_prepare_workloads_subset():
    workloads = prepare_workloads(["alu", "apb"], QUICK_PROFILE)
    assert [w.name for w in workloads] == ["alu", "apb"]


def test_environment_table():
    table = environment.run(print_output=False)
    text = table.render()
    assert "Xeon" in text           # the paper column
    assert "reproduction" in text   # ours


def test_table2_row_runs(capsys):
    rows = table2.run(["alu"], QUICK_PROFILE, print_output=True)
    out = capsys.readouterr().out
    assert "Table II" in out
    row = rows[0]
    assert row.benchmark == "alu"
    assert row.verdicts_match
    assert row.eraser_coverage == pytest.approx(row.z01x_coverage)
    assert 0.0 <= row.eraser_coverage <= 100.0


def test_fig1b_row_runs():
    rows = fig1b.run(["apb"], QUICK_PROFILE, print_output=False)
    row = rows[0]
    assert 0.0 <= row.explicit_share <= 100.0
    assert 0.0 <= row.implicit_share <= 100.0
    if row.explicit_share or row.implicit_share:
        assert row.explicit_share + row.implicit_share == pytest.approx(100.0, abs=1e-6)


def test_fig6_row_runs_and_orders_simulators():
    rows = fig6.run(["alu"], QUICK_PROFILE, print_output=False)
    row = rows[0]
    assert set(row.times) == {"IFsim", "VFsim", "Z01X", "Eraser"}
    assert row.verdicts_agree
    assert row.speedups["IFsim"] == pytest.approx(1.0)
    assert row.speedups["Eraser"] > 1.0
    summary = fig6.summarize(rows)
    assert summary["eraser_vs_ifsim_geomean"] > 1.0


def test_fig7_row_runs():
    rows = fig7.run(["alu"], QUICK_PROFILE, print_output=False)
    row = rows[0]
    assert row.verdicts_agree
    assert row.speedups["Eraser--"] == pytest.approx(1.0)
    assert row.speedups["Eraser"] >= row.speedups["Eraser-"] * 0.8


def test_table3_row_runs():
    rows = table3.run(["apb"], QUICK_PROFILE, print_output=False)
    row = rows[0]
    assert row.total_executions > 0
    assert row.eliminated <= row.total_executions
    assert row.explicit_pct + row.implicit_pct <= 100.0 + 1e-6
    averages = table3.averages(rows)
    assert set(averages) == {"explicit", "implicit"}


def test_geometric_mean():
    assert fig6.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert fig6.geometric_mean([]) == 0.0


def test_cli_parser_and_table1(capsys):
    parser = build_parser()
    args = parser.parse_args(["table1"])
    assert args.artifact == "table1"
    assert main(["table1"]) == 0
    assert "Evaluation Environment" in capsys.readouterr().out


def test_cli_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure99"])
